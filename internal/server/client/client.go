// Package client is the fault-tolerant HTTP client for the maxisd solve
// API: per-request timeouts, exponential backoff with seeded jitter,
// optional request hedging, and a circuit breaker that routes to the
// server's degraded greedy tier while open.
//
// It is the client half of the serving tier's availability story: the
// server isolates panics and journals accepted work; the client absorbs
// the transient failures that still leak through (injected 5xx, connection
// resets, latency spikes) so callers see an SLO, not a fault log.
// cmd/loadgen and the chaos soak test both drive the service through it.
//
// Retries are safe by construction: solves are pure functions of the
// request, so re-sending a request can change availability but never the
// answer.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"distmwis/internal/server"
)

// Options tunes the client. The zero value is usable.
type Options struct {
	// Timeout bounds each individual HTTP attempt (default 5s).
	Timeout time.Duration
	// MaxRetries is the number of re-attempts after the first try
	// (default 2; negative disables retries).
	MaxRetries int
	// BackoffBase and BackoffCap shape the exponential backoff between
	// attempts: attempt k sleeps a jittered min(BackoffBase·2ᵏ, BackoffCap)
	// (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HedgeAfter, when positive, launches a second identical request if the
	// first has not answered within this duration; the first response wins.
	// Off by default.
	HedgeAfter time.Duration
	// Seed drives the backoff jitter, making retry timing replayable
	// (default 1).
	Seed uint64
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker (0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting a
	// single half-open probe (default 1s).
	BreakerCooldown time.Duration
	// HTTPClient overrides the transport (default a plain &http.Client{};
	// per-attempt timeouts come from Options.Timeout, not the http.Client).
	HTTPClient *http.Client
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	return o
}

// Stats counts the client's fault-handling activity.
type Stats struct {
	Attempts     int64 // HTTP requests sent (including retries and hedges)
	Retries      int64 // re-attempts after a retryable failure
	Hedges       int64 // hedge requests launched
	BreakerOpens int64 // closed/half-open → open transitions
	Fallbacks    int64 // requests routed to the degraded tier by an open breaker
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Client is a concurrency-safe solve client bound to one maxisd base URL.
type Client struct {
	base string
	opts Options

	attempts     atomic.Int64
	retries      atomic.Int64
	hedges       atomic.Int64
	breakerOpens atomic.Int64
	fallbacks    atomic.Int64

	mu       sync.Mutex
	rng      *rand.Rand
	state    breakerState
	fails    int       // consecutive full-tier failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

// New builds a Client for the maxisd instance at base (e.g.
// "http://127.0.0.1:8080").
func New(base string, opts Options) *Client {
	opts = opts.withDefaults()
	return &Client{
		base: base,
		opts: opts,
		rng:  rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15)),
	}
}

// Stats snapshots the fault-handling counters.
func (c *Client) Stats() Stats {
	return Stats{
		Attempts:     c.attempts.Load(),
		Retries:      c.retries.Load(),
		Hedges:       c.hedges.Load(),
		BreakerOpens: c.breakerOpens.Load(),
		Fallbacks:    c.fallbacks.Load(),
	}
}

// errRetryable wraps failures worth re-attempting: transport errors,
// injected resets, 5xx and 429 responses.
type errRetryable struct{ err error }

func (e errRetryable) Error() string { return e.err.Error() }
func (e errRetryable) Unwrap() error { return e.err }

func retryable(err error) bool {
	var r errRetryable
	return errors.As(err, &r)
}

// Retryable reports whether err is a transient failure this client already
// retried through (transport error, injected reset, 5xx, 429). A cluster
// coordinator uses the distinction to fail the backend over — a terminal
// error is the request's fault and follows it to any backend, a retryable
// one indicts the node.
func Retryable(err error) bool { return retryable(err) }

// Solve sends one solve request, absorbing transient faults per Options.
// When the breaker is open, the request is re-routed to the server's
// degraded greedy tier (SolveRequest.Degraded) instead of failing fast —
// availability over approximation quality, reported via Response.Degraded.
func (c *Client) Solve(ctx context.Context, req server.SolveRequest) (server.SolveResponse, error) {
	if c.allowFull() {
		resp, err := c.attemptLoop(ctx, req)
		c.record(err)
		return resp, err
	}
	c.fallbacks.Add(1)
	req.Degraded = true
	// Fallback traffic does not feed the breaker: it measures the degraded
	// tier, not the full one.
	return c.attemptLoop(ctx, req)
}

// allowFull decides whether this request may use the full solve tier.
func (c *Client) allowFull() bool {
	if c.opts.BreakerThreshold <= 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(c.openedAt) >= c.opts.BreakerCooldown {
			c.state = breakerHalfOpen
			c.probing = true
			return true
		}
		return false
	default: // half-open
		if !c.probing {
			c.probing = true
			return true
		}
		return false
	}
}

// record feeds a full-tier outcome back into the breaker.
func (c *Client) record(err error) {
	if c.opts.BreakerThreshold <= 0 {
		return
	}
	// Only transient faults indict the server; a 4xx is the caller's bug.
	failure := err != nil && retryable(err)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !failure {
		c.fails = 0
		c.state = breakerClosed
		c.probing = false
		return
	}
	switch c.state {
	case breakerHalfOpen:
		// The probe failed: reopen and restart the cooldown clock.
		c.state = breakerOpen
		c.openedAt = time.Now()
		c.probing = false
		c.breakerOpens.Add(1)
	case breakerClosed:
		c.fails++
		if c.fails >= c.opts.BreakerThreshold {
			c.state = breakerOpen
			c.openedAt = time.Now()
			c.breakerOpens.Add(1)
		}
	}
}

// attemptLoop retries a request through transient failures with jittered
// exponential backoff.
func (c *Client) attemptLoop(ctx context.Context, req server.SolveRequest) (server.SolveResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return server.SolveResponse{}, fmt.Errorf("client: encode request: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			select {
			case <-time.After(c.backoff(attempt - 1)):
			case <-ctx.Done():
				return server.SolveResponse{}, ctx.Err()
			}
		}
		resp, err := c.once(ctx, body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			return resp, err
		}
	}
	return server.SolveResponse{}, lastErr
}

// backoff returns the jittered sleep before re-attempt number attempt+1:
// uniformly between half and all of min(base·2ᵃᵗᵗᵉᵐᵖᵗ, cap).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BackoffBase << uint(attempt)
	if d > c.opts.BackoffCap || d <= 0 {
		d = c.opts.BackoffCap
	}
	c.mu.Lock()
	jitter := c.rng.Float64()
	c.mu.Unlock()
	return d/2 + time.Duration(jitter*float64(d/2))
}

// once performs a single (possibly hedged) attempt under the per-attempt
// timeout. With hedging enabled, a second identical request launches if
// the first has not answered within HedgeAfter; the first response of
// either decides the attempt and the straggler is cancelled and drained.
func (c *Client) once(ctx context.Context, body []byte) (server.SolveResponse, error) {
	actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()

	type result struct {
		resp *http.Response
		err  error
	}
	ch := make(chan result, 2)
	send := func() {
		c.attempts.Add(1)
		hreq, err := http.NewRequestWithContext(actx, http.MethodPost, c.base+"/v1/solve", bytes.NewReader(body))
		if err != nil {
			ch <- result{nil, err}
			return
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := c.opts.HTTPClient.Do(hreq)
		ch <- result{resp, err}
	}

	go send()
	outstanding := 1
	var hedgeC <-chan time.Time
	if c.opts.HedgeAfter > 0 {
		t := time.NewTimer(c.opts.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	// reap cancels and drains the losing in-flight request(s) so no
	// connection or goroutine outlives the attempt.
	reap := func(n int) {
		if n <= 0 {
			return
		}
		cancel()
		go func() {
			for i := 0; i < n; i++ {
				if r := <-ch; r.resp != nil {
					_, _ = io.Copy(io.Discard, r.resp.Body)
					_ = r.resp.Body.Close()
				}
			}
		}()
	}

	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err != nil {
				if outstanding > 0 {
					// The hedge is still in flight and may yet win.
					continue
				}
				return server.SolveResponse{}, errRetryable{fmt.Errorf("client: %w", r.err)}
			}
			resp, err := decode(r.resp)
			reap(outstanding)
			return resp, err
		case <-hedgeC:
			hedgeC = nil
			c.hedges.Add(1)
			outstanding++
			go send()
		case <-actx.Done():
			reap(outstanding)
			return server.SolveResponse{}, errRetryable{fmt.Errorf("client: attempt timed out: %w", actx.Err())}
		}
	}
}

// decode classifies one HTTP response: 200/202 succeed, 429 and 5xx are
// retryable, other statuses are terminal caller errors.
func decode(hr *http.Response) (server.SolveResponse, error) {
	defer hr.Body.Close()
	var resp server.SolveResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return server.SolveResponse{}, errRetryable{fmt.Errorf("client: decode response (status %d): %w", hr.StatusCode, err)}
	}
	switch {
	case hr.StatusCode == http.StatusOK || hr.StatusCode == http.StatusAccepted:
		return resp, nil
	case hr.StatusCode == http.StatusTooManyRequests || hr.StatusCode >= 500:
		return resp, errRetryable{fmt.Errorf("client: server status %d: %s", hr.StatusCode, resp.Error)}
	default:
		return resp, fmt.Errorf("client: server status %d: %s", hr.StatusCode, resp.Error)
	}
}
