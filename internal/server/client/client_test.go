package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"distmwis/internal/server"
)

func genReq() server.SolveRequest {
	return server.SolveRequest{
		Gen: &server.GenSpec{Kind: "cycle", N: 9},
		Alg: "greedy",
	}
}

func fakeSolve(t *testing.T, handler func(w http.ResponseWriter, req server.SolveRequest, n int64)) *httptest.Server {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req server.SolveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("fake server: bad body: %v", err)
		}
		handler(w, req, calls.Add(1))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func respond(w http.ResponseWriter, status int, resp server.SolveResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

func TestClientRetriesTransientFailures(t *testing.T) {
	ts := fakeSolve(t, func(w http.ResponseWriter, _ server.SolveRequest, n int64) {
		if n <= 2 {
			respond(w, http.StatusInternalServerError, server.SolveResponse{Status: "failed", Error: "injected"})
			return
		}
		respond(w, http.StatusOK, server.SolveResponse{Status: "done", Weight: 42})
	})
	c := New(ts.URL, Options{MaxRetries: 3, BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond})
	resp, err := c.Solve(context.Background(), genReq())
	if err != nil {
		t.Fatalf("Solve after retries: %v", err)
	}
	if resp.Weight != 42 {
		t.Fatalf("weight = %d, want 42", resp.Weight)
	}
	if st := c.Stats(); st.Retries != 2 || st.Attempts != 3 {
		t.Fatalf("stats = %+v, want 2 retries over 3 attempts", st)
	}
}

func TestClientDoesNotRetryCallerErrors(t *testing.T) {
	ts := fakeSolve(t, func(w http.ResponseWriter, _ server.SolveRequest, _ int64) {
		respond(w, http.StatusBadRequest, server.SolveResponse{Status: "failed", Error: "bad eps"})
	})
	c := New(ts.URL, Options{MaxRetries: 3, BackoffBase: time.Millisecond})
	if _, err := c.Solve(context.Background(), genReq()); err == nil {
		t.Fatal("Solve of a 400 must fail")
	}
	if st := c.Stats(); st.Attempts != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want exactly one attempt for a 4xx", st)
	}
}

// TestClientBreakerFallbackAndRecovery walks the full breaker cycle:
// consecutive failures open it, open routes to the degraded tier, the
// post-cooldown probe closes it again.
func TestClientBreakerFallbackAndRecovery(t *testing.T) {
	down := atomic.Bool{}
	down.Store(true)
	ts := fakeSolve(t, func(w http.ResponseWriter, req server.SolveRequest, _ int64) {
		if req.Degraded {
			respond(w, http.StatusOK, server.SolveResponse{Status: "done", Degraded: true, Weight: 1})
			return
		}
		if down.Load() {
			respond(w, http.StatusInternalServerError, server.SolveResponse{Status: "failed", Error: "injected"})
			return
		}
		respond(w, http.StatusOK, server.SolveResponse{Status: "done", Weight: 42})
	})
	c := New(ts.URL, Options{
		MaxRetries:       0,
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
		BackoffBase:      time.Millisecond,
	})
	ctx := context.Background()

	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := c.Solve(ctx, genReq()); err == nil {
			t.Fatal("full tier is down, Solve must fail")
		}
	}
	if st := c.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want 1", st.BreakerOpens)
	}

	// While open: routed to the degraded tier, reported as such.
	resp, err := c.Solve(ctx, genReq())
	if err != nil {
		t.Fatalf("degraded fallback: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("open breaker must route to the degraded tier")
	}
	if st := c.Stats(); st.Fallbacks == 0 {
		t.Fatal("fallbacks not counted")
	}

	// Server heals; after the cooldown the half-open probe closes the breaker.
	down.Store(false)
	time.Sleep(50 * time.Millisecond)
	resp, err = c.Solve(ctx, genReq())
	if err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if resp.Degraded || resp.Weight != 42 {
		t.Fatalf("probe response = %+v, want a full-tier result", resp)
	}
	// Breaker is closed again: the next request is full-tier too.
	if resp, err = c.Solve(ctx, genReq()); err != nil || resp.Degraded {
		t.Fatalf("after recovery: resp=%+v err=%v, want full tier", resp, err)
	}
}

// TestClientHedgingWinsOnSlowPrimary pins the hedge contract: when the
// first request stalls, the hedge launches and its faster answer wins.
func TestClientHedgingWinsOnSlowPrimary(t *testing.T) {
	ts := fakeSolve(t, func(w http.ResponseWriter, _ server.SolveRequest, n int64) {
		if n == 1 {
			time.Sleep(300 * time.Millisecond) // primary stalls
		}
		respond(w, http.StatusOK, server.SolveResponse{Status: "done", Weight: n})
	})
	c := New(ts.URL, Options{HedgeAfter: 20 * time.Millisecond, Timeout: 2 * time.Second})
	start := time.Now()
	resp, err := c.Solve(context.Background(), genReq())
	if err != nil {
		t.Fatalf("hedged Solve: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("hedged request took %v, should beat the 300ms primary stall", elapsed)
	}
	if resp.Weight != 2 {
		t.Fatalf("winner = attempt %d, want the hedge (2)", resp.Weight)
	}
	if st := c.Stats(); st.Hedges != 1 || st.Attempts != 2 {
		t.Fatalf("stats = %+v, want 1 hedge over 2 attempts", st)
	}
}

func TestClientPerAttemptTimeout(t *testing.T) {
	ts := fakeSolve(t, func(w http.ResponseWriter, _ server.SolveRequest, _ int64) {
		time.Sleep(200 * time.Millisecond)
		respond(w, http.StatusOK, server.SolveResponse{Status: "done"})
	})
	c := New(ts.URL, Options{Timeout: 25 * time.Millisecond, MaxRetries: 1, BackoffBase: time.Millisecond})
	start := time.Now()
	if _, err := c.Solve(context.Background(), genReq()); err == nil {
		t.Fatal("Solve must fail when every attempt times out")
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("two 25ms attempts took %v", elapsed)
	}
	if st := c.Stats(); st.Retries != 1 {
		t.Fatalf("stats = %+v, want the timeout retried once", st)
	}
}
