package client

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/server"
)

// TestPatchGraphCAS drives the optimistic-concurrency loop against a real
// server: apply, lose a race, observe ErrCASConflict with the current
// hash, rebase, win.
func TestPatchGraphCAS(t *testing.T) {
	s := server.New(server.Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); _ = s.Close() }()
	c := New(ts.URL, Options{Timeout: 5 * time.Second, MaxRetries: 1, BackoffBase: time.Millisecond})
	ctx := context.Background()

	var buf bytes.Buffer
	if err := gen.Path(6).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	put, err := c.PutGraph(ctx, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	// First CAS writer wins.
	win, err := c.PatchGraphCAS(ctx, put.Hash, put.Hash, graph.Edit{AddEdges: [][2]int32{{0, 2}}})
	if err != nil {
		t.Fatalf("matching CAS failed: %v", err)
	}

	// Second writer still holding the old hash loses, learns the current
	// one from the error's response, rebases, wins.
	_, err = c.PatchGraphCAS(ctx, put.Hash, put.Hash, graph.Edit{AddEdges: [][2]int32{{0, 3}}})
	if !errors.Is(err, ErrCASConflict) {
		t.Fatalf("stale CAS error = %v, want ErrCASConflict", err)
	}
	lost, err2 := c.PatchGraphCAS(ctx, put.Hash, put.Hash, graph.Edit{AddEdges: [][2]int32{{0, 3}}})
	if !errors.Is(err2, ErrCASConflict) {
		t.Fatalf("repeat stale CAS error = %v", err2)
	}
	if lost.Hash != win.Hash {
		t.Fatalf("conflict response hash %s, current %s", lost.Hash, win.Hash)
	}
	rebased, err := c.PatchGraphCAS(ctx, lost.Hash, lost.Hash, graph.Edit{AddEdges: [][2]int32{{0, 3}}})
	if err != nil {
		t.Fatalf("rebased CAS failed: %v", err)
	}
	if rebased.EdgesAdded != 1 {
		t.Fatalf("rebased edit applied %d edges", rebased.EdgesAdded)
	}

	// A CAS conflict is terminal, not retryable: the client must not have
	// burned its retry budget re-sending a request that can only conflict
	// again.
	if Retryable(err2) {
		t.Fatal("CAS conflict classified retryable")
	}
}
