package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"distmwis/internal/stats"
	"distmwis/internal/trace"
)

// latencySampler keeps a bounded reservoir of recent latencies per label and
// reports quantiles at scrape time via stats.Quantile. A plain ring of the
// last maxSamples observations is deliberate: the service cares about
// recent tail latency, not all-time.
type latencySampler struct {
	mu      sync.Mutex
	samples map[string][]float64 // label → ring of seconds
	next    map[string]int       // label → next write position
	count   map[string]int64     // label → total observations
	sum     map[string]float64   // label → total seconds
	cap     int
}

func newLatencySampler(capPerLabel int) *latencySampler {
	if capPerLabel < 16 {
		capPerLabel = 16
	}
	return &latencySampler{
		samples: make(map[string][]float64),
		next:    make(map[string]int),
		count:   make(map[string]int64),
		sum:     make(map[string]float64),
		cap:     capPerLabel,
	}
}

func (l *latencySampler) observe(label string, seconds float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ring := l.samples[label]
	if len(ring) < l.cap {
		l.samples[label] = append(ring, seconds)
	} else {
		ring[l.next[label]%l.cap] = seconds
		l.next[label] = (l.next[label] + 1) % l.cap
	}
	l.count[label]++
	l.sum[label] += seconds
}

// quantiles returns per-label p50/p95/p99 snapshots, labels sorted.
func (l *latencySampler) quantiles() []latencyQuantiles {
	l.mu.Lock()
	defer l.mu.Unlock()
	labels := make([]string, 0, len(l.samples))
	for label := range l.samples {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	out := make([]latencyQuantiles, 0, len(labels))
	for _, label := range labels {
		sorted := append([]float64(nil), l.samples[label]...)
		sort.Float64s(sorted)
		out = append(out, latencyQuantiles{
			Label: label,
			Count: l.count[label],
			Sum:   l.sum[label],
			P50:   stats.Quantile(sorted, 0.50),
			P95:   stats.Quantile(sorted, 0.95),
			P99:   stats.Quantile(sorted, 0.99),
		})
	}
	return out
}

type latencyQuantiles struct {
	Label         string
	Count         int64
	Sum           float64
	P50, P95, P99 float64
}

// metrics aggregates every service counter exposed on /metrics. Engine
// totals come from a trace.Totals installed as the Tracer of every solve.
type metrics struct {
	requests  atomic.Int64 // POST /v1/solve accepted for processing
	rejected  atomic.Int64 // 429 token-bucket rejections
	shed      atomic.Int64 // degraded (greedy) responses
	failures  atomic.Int64 // solves that returned an error
	deadlines atomic.Int64 // jobs expired before or during solve wait
	planned   atomic.Int64 // alg=auto requests resolved by the planner

	latency *latencySampler
	engine  *trace.Totals
}

func newMetrics() *metrics {
	return &metrics{
		latency: newLatencySampler(4096),
		engine:  &trace.Totals{},
	}
}

// write renders the Prometheus text exposition format. Only the subset of
// the format the ecosystem's scrapers need: HELP/TYPE comments, counters,
// gauges and summary quantiles.
func (m *metrics) write(w io.Writer, srv *Server) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("maxisd_requests_total", "Solve requests accepted for processing.", m.requests.Load())
	counter("maxisd_rejected_total", "Requests rejected by the token bucket (429).", m.rejected.Load())
	counter("maxisd_degraded_total", "Requests answered by the degraded greedy tier.", m.shed.Load())
	counter("maxisd_failures_total", "Solves that returned an error.", m.failures.Load())
	counter("maxisd_deadline_total", "Jobs that missed their deadline.", m.deadlines.Load())
	counter("maxisd_planner_auto_total", "alg=auto requests resolved through the planner.", m.planned.Load())

	hits, misses, evictions, dedups, invalidations, used, entries := srv.cache.stats()
	counter("maxisd_cache_hits_total", "Content-addressed cache hits.", hits)
	counter("maxisd_cache_misses_total", "Content-addressed cache misses.", misses)
	counter("maxisd_cache_evictions_total", "Entries evicted by the byte budget.", evictions)
	counter("maxisd_singleflight_shared_total", "Requests served by another request's in-flight solve.", dedups)
	gauge("maxisd_cache_bytes", "Bytes currently held by the result cache.", used)
	gauge("maxisd_cache_entries", "Entries currently held by the result cache.", int64(entries))

	gauge("maxisd_queue_depth", "Jobs queued and not yet started.", int64(srv.sched.depth()))
	gauge("maxisd_jobs_inflight", "Jobs currently being solved.", srv.sched.inflight.Load())
	counter("maxisd_jobs_done_total", "Jobs completed by the worker pool.", srv.sched.done.Load())
	counter("maxisd_jobs_expired_total", "Jobs skipped because their deadline passed in queue.", srv.sched.expired.Load())
	counter("maxisd_worker_panics_total", "Jobs failed by a worker panic.", srv.sched.panics.Load())
	counter("maxisd_worker_restarts_total", "Worker goroutines replaced after a panic.", srv.sched.restarts.Load())
	counter("maxisd_journal_recovered_total", "Jobs re-enqueued from the write-ahead journal at boot.", srv.recovered.Load())
	counter("maxisd_cache_invalidations_total", "Entries evicted by component-granular invalidation.", invalidations)

	// Dynamic-graph subsystem: mutation volume, invalidation granularity
	// and the self-healing pipeline's progress.
	srv.graphs.mu.Lock()
	graphs := int64(len(srv.graphs.order))
	mutations, invalidatedComps, healed := srv.graphs.mutations, srv.graphs.invalidated, srv.graphs.healed
	srv.graphs.mu.Unlock()
	gauge("maxisd_graphs", "Dynamic graph handles currently stored.", graphs)
	counter("maxisd_graph_mutations_total", "Graph PATCHes applied and journaled.", mutations)
	counter("maxisd_invalidated_components_total", "Connected components whose cached answers a mutation evicted.", invalidatedComps)
	counter("maxisd_healed_answers_total", "Answers healed onto a new graph version after a PATCH.", healed)

	rep := srv.repairTier.Stats()
	gauge("maxisd_repair_queue_depth", "Degraded answers waiting for the background repair tier.", int64(rep.QueueDepth))
	counter("maxisd_repair_improved_total", "Answers upgraded to improved quality (greedy re-admission).", rep.Improved)
	counter("maxisd_repair_upgrades_total", "Answers upgraded to full quality (background re-solve).", rep.Upgraded)
	counter("maxisd_repair_dropped_total", "Upgrade tasks dropped by the bounded repair queue.", rep.Dropped)
	gaugeF("maxisd_answer_staleness_seconds", "Age of the oldest degraded answer awaiting upgrade.", rep.OldestWaitSeconds)

	if inj := srv.opts.Chaos; inj != nil {
		st := inj.Stats()
		counter("maxisd_chaos_requests_total", "Requests evaluated by the chaos injector.", st.Requests)
		counter("maxisd_chaos_latency_total", "Requests with injected latency.", st.Latencies)
		counter("maxisd_chaos_errors_total", "Requests failed with an injected 500.", st.Errors)
		counter("maxisd_chaos_resets_total", "Requests dropped by an injected connection reset.", st.Resets)
		counter("maxisd_chaos_slow_total", "Jobs slowed by the chaos hook.", st.Slows)
		counter("maxisd_chaos_panics_total", "Worker panics injected by the chaos hook.", st.Panics)
	}

	// Engine totals from the shared trace.Totals tracer.
	eng := m.engine.Snapshot()
	counter("maxisd_engine_runs_total", "CONGEST protocol phases executed.", int64(eng.Runs))
	counter("maxisd_engine_rounds_total", "Synchronous rounds simulated.", int64(eng.Rounds))
	counter("maxisd_engine_messages_total", "Messages delivered across all rounds.", eng.Messages)
	counter("maxisd_engine_bits_total", "Payload bits delivered across all rounds.", eng.Bits)
	counter("maxisd_engine_retransmits_total", "Reliable-transport retransmissions.", eng.Retransmits)

	fmt.Fprintf(w, "# HELP maxisd_solve_latency_seconds Recent solve latency quantiles per algorithm.\n")
	fmt.Fprintf(w, "# TYPE maxisd_solve_latency_seconds summary\n")
	for _, q := range m.latency.quantiles() {
		fmt.Fprintf(w, "maxisd_solve_latency_seconds{alg=%q,quantile=\"0.5\"} %g\n", q.Label, q.P50)
		fmt.Fprintf(w, "maxisd_solve_latency_seconds{alg=%q,quantile=\"0.95\"} %g\n", q.Label, q.P95)
		fmt.Fprintf(w, "maxisd_solve_latency_seconds{alg=%q,quantile=\"0.99\"} %g\n", q.Label, q.P99)
		fmt.Fprintf(w, "maxisd_solve_latency_seconds_sum{alg=%q} %g\n", q.Label, q.Sum)
		fmt.Fprintf(w, "maxisd_solve_latency_seconds_count{alg=%q} %d\n", q.Label, q.Count)
	}
}
