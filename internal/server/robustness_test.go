package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"distmwis/internal/chaos"
	"distmwis/internal/reliable"
)

func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	buf := make([]byte, 512)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, body.String()
}

// TestReadyzDegradesOnRestartBudget pins the load-balancer contract: a
// pool that keeps panicking past its restart budget turns /readyz red
// while /healthz stays green.
func TestReadyzDegradesOnRestartBudget(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, RestartBudget: 3})
	if code, _ := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("fresh server readyz = %d", code)
	}
	s.sched.restarts.Store(4) // one past the budget
	code, body := getStatus(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "restarts exceed budget") {
		t.Fatalf("readyz past budget = %d %q, want 503", code, body)
	}
	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz must stay green while degraded, got %d", code)
	}
}

// TestReadyzDegradesOnSaturation fills the queue past the shed threshold
// and expects /readyz to route traffic away.
func TestReadyzDegradesOnSaturation(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8, ShedDepth: 2})
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	if err := s.sched.submit(newTestJob("interactive", func() { close(started); <-block })); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 3; i++ {
		if err := s.sched.submit(newTestJob("batch", func() {})); err != nil {
			t.Fatal(err)
		}
	}
	code, body := getStatus(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "saturated") {
		t.Fatalf("readyz under saturation = %d %q, want 503", code, body)
	}
}

// TestDegradedDirectTier pins the breaker-fallback endpoint: a request
// with degraded=true is answered host-side, deterministically, marked
// degraded, without touching scheduler or cache.
func TestDegradedDirectTier(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	req := SolveRequest{
		Gen:      &GenSpec{Kind: "gnp", N: 120, P: 0.05, Weights: "poly2", Seed: 9},
		Alg:      "theorem2",
		Seed:     9,
		Degraded: true,
	}
	code, resp := postSolve(t, ts, req)
	if code != http.StatusOK || resp.Status != "done" || !resp.Degraded {
		t.Fatalf("degraded solve: code=%d resp=%+v", code, resp)
	}
	if resp.Weight <= 0 || len(resp.Set) == 0 {
		t.Fatalf("degraded tier returned an empty set: %+v", resp)
	}
	// Deterministic: a second identical request returns the identical set,
	// and neither went through the scheduler.
	_, again := postSolve(t, ts, req)
	if fmt.Sprint(resp.Set) != fmt.Sprint(again.Set) || resp.Weight != again.Weight {
		t.Fatalf("degraded tier not deterministic: %+v vs %+v", resp, again)
	}
	if st := s.Stats(); st.JobsDone != 0 {
		t.Fatalf("degraded requests must bypass the scheduler, did %d jobs", st.JobsDone)
	}
	// Async is ignored for degraded requests: still answered synchronously.
	req.Async = true
	code, resp = postSolve(t, ts, req)
	if code != http.StatusOK || resp.Status != "done" {
		t.Fatalf("async degraded solve must answer synchronously: code=%d resp=%+v", code, resp)
	}
}

// TestWorkerPanicFailsJobWithTyped500 schedules a chaos panic on the
// first job: that request fails with the typed worker-panic error while
// the next request succeeds on the restarted worker.
func TestWorkerPanicFailsJobWithTyped500(t *testing.T) {
	inj := chaos.NewInjector(chaos.Schedule{Seed: 5, Panics: []int64{1}})
	s, ts := newTestServer(t, Options{Workers: 1, Chaos: inj})
	req := SolveRequest{
		Gen:     &GenSpec{Kind: "cycle", N: 60},
		Alg:     "goodnodes",
		NoCache: true,
	}
	code, resp := postSolve(t, ts, req)
	if code != http.StatusInternalServerError || resp.Status != "failed" {
		t.Fatalf("panicked job: code=%d resp=%+v, want typed 500", code, resp)
	}
	if !strings.Contains(resp.Error, "worker panicked") {
		t.Fatalf("panicked job error = %q, want the typed worker-panic error", resp.Error)
	}
	code, resp = postSolve(t, ts, req)
	if code != http.StatusOK || resp.Status != "done" {
		t.Fatalf("request after panic: code=%d resp=%+v, want recovery", code, resp)
	}
	if st := s.Stats(); st.WorkerPanics != 1 || st.WorkerRestarts != 1 {
		t.Fatalf("stats = %+v, want 1 panic / 1 restart", st)
	}
}

// TestJournalCrashRecovery simulates SIGKILL mid-solve: the journal is
// copied the instant after an async job is accepted (the crashed disk
// image) and a second server recovering from that copy must re-solve the
// job to the bit-identical result.
func TestJournalCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live.wal")

	// Server 1: single worker slowed 200ms per job, so the accepted job is
	// guaranteed un-committed when the "crash" snapshot is taken.
	slow := chaos.NewInjector(chaos.Schedule{Seed: 2, SlowP: 1, Slow: 200 * time.Millisecond})
	s1, ts1 := newTestServer(t, Options{Workers: 1, Chaos: slow})
	if _, err := s1.OpenJournal(live); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s1.Close() })

	req := SolveRequest{
		Gen:   &GenSpec{Kind: "gnp", N: 100, P: 0.06, Weights: "poly2", Seed: 13},
		Alg:   "theorem2",
		Seed:  13,
		Async: true,
	}
	code, accepted := postSolve(t, ts1, req)
	if code != http.StatusAccepted {
		t.Fatalf("async accept: code=%d resp=%+v", code, accepted)
	}
	// SIGKILL: freeze the disk image while the job is still in flight.
	img, err := os.ReadFile(live)
	if err != nil {
		t.Fatal(err)
	}
	crashed := filepath.Join(dir, "crashed.wal")
	if err := os.WriteFile(crashed, img, 0o644); err != nil {
		t.Fatal(err)
	}

	// Reference: what the lost process would have answered.
	want, err := New(Options{Workers: 1}).prepareAndSolveForTest(req)
	if err != nil {
		t.Fatal(err)
	}

	// Server 2 boots from the crashed image.
	s2, ts2 := newTestServer(t, Options{Workers: 2})
	recovered, err := s2.OpenJournal(crashed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s2.Close() })
	if recovered != 1 {
		t.Fatalf("recovered %d jobs, want 1", recovered)
	}

	deadline := time.Now().Add(10 * time.Second)
	var final SolveResponse
	for {
		httpResp, err := http.Get(ts2.URL + "/v1/jobs/" + accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(httpResp.Body).Decode(&final)
		httpResp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if final.Status != "queued" && final.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job never finished: %+v", final)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.Status != "done" {
		t.Fatalf("recovered job = %+v, want done", final)
	}
	if fmt.Sprint(final.Set) != fmt.Sprint(want.Set) || final.Weight != want.Weight {
		t.Fatalf("replayed result differs from the lost solve:\n got %+v\nwant %+v", final, want)
	}

	// The recovered job committed: a third boot sees an empty backlog.
	f, err := os.Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := reliable.ReadWAL(f)
	if err != nil {
		t.Fatal(err)
	}
	if pending := reliable.PendingWAL(recs); len(pending) != 0 {
		t.Fatalf("journal still pending after recovery: %+v", pending)
	}
}

// prepareAndSolveForTest runs a request synchronously through the full
// pipeline, bypassing HTTP — the reference result for replay comparisons.
func (s *Server) prepareAndSolveForTest(req SolveRequest) (SolveResponse, error) {
	if err := req.Normalize(); err != nil {
		return SolveResponse{}, err
	}
	req.Async = false
	p, err := s.prepare(&req)
	if err != nil {
		return SolveResponse{}, err
	}
	resp := s.execute(context.Background(), &req, p, "ref", time.Now(), false)
	if resp.Status != "done" {
		return resp, fmt.Errorf("reference solve failed: %+v", resp)
	}
	return resp, nil
}

// TestSingleFlightLeaderCancelMidSolve pins the follower-retry fix: when
// the single-flight leader dies of its own deadline mid-solve, a follower
// with a healthy context still gets a completed result instead of
// inheriting the leader's context error.
func TestSingleFlightLeaderCancelMidSolve(t *testing.T) {
	slow := chaos.NewInjector(chaos.Schedule{Seed: 4, SlowP: 1, Slow: 300 * time.Millisecond})
	_, ts := newTestServer(t, Options{Workers: 1, Chaos: slow})
	req := SolveRequest{
		Gen:  &GenSpec{Kind: "gnp", N: 80, P: 0.05, Weights: "poly2", Seed: 21},
		Alg:  "goodnodes",
		Seed: 21,
	}

	// Leader: async with a deadline far shorter than the 300ms slow solve.
	leaderReq := req
	leaderReq.Async = true
	leaderReq.DeadlineMS = 100
	code, accepted := postSolve(t, ts, leaderReq)
	if code != http.StatusAccepted {
		t.Fatalf("leader accept: code=%d", code)
	}
	time.Sleep(30 * time.Millisecond) // let the leader start its flight

	// Follower: same request, no deadline. Must come back done even though
	// the leader's context dies mid-solve.
	code, resp := postSolve(t, ts, req)
	if code != http.StatusOK || resp.Status != "done" {
		t.Fatalf("follower: code=%d resp=%+v, want done despite leader cancel", code, resp)
	}

	// And the leader's own record reports its deadline honestly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		httpResp, err := http.Get(ts.URL + "/v1/jobs/" + accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		var rec SolveResponse
		err = json.NewDecoder(httpResp.Body).Decode(&rec)
		httpResp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Status == "deadline" {
			break
		}
		if rec.Status != "queued" && rec.Status != "running" {
			t.Fatalf("leader record = %+v, want deadline", rec)
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader never reported its deadline: %+v", rec)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
