package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"distmwis/internal/reliable"
)

// This file wires the reliable.WAL write-ahead journal into the serving
// tier. The contract, verified by the chaos soak test:
//
//  1. Every async job is journaled (begin record with the full normalized
//     request) BEFORE the 202 acknowledgement is written.
//  2. A job reaching any terminal state appends a commit record.
//  3. On boot, every begin without a commit — the jobs a crash interrupted
//     — is re-enqueued and re-solved. Solves are pure functions of the
//     request, so the replayed result is bit-identical to what the lost
//     process would have produced.
//
// Execution is therefore at-least-once, which determinism upgrades to
// exactly-once-equivalent: a job that completed but crashed before its
// commit reached disk is simply solved again to the same answer.

// OpenJournal attaches the write-ahead journal at path and replays every
// pending (accepted-but-uncommitted) job from a previous process. It must
// be called before the server starts accepting traffic, and at most once.
// Returns the number of jobs recovered.
func (s *Server) OpenJournal(path string) (int, error) {
	if s.wal != nil {
		return 0, fmt.Errorf("server: journal already open at %s", s.wal.Path())
	}
	wal, retained, err := reliable.OpenWAL(path)
	if err != nil {
		return 0, err
	}
	s.wal = wal
	// The request journal holds only begin/commit records; PendingWAL also
	// screens out any apply records a misconfigured path might mix in.
	pending := reliable.PendingWAL(retained)

	// Job IDs keep their original names across the restart so clients can
	// still poll them; bump the sequence past every recovered ID so new
	// jobs never collide.
	maxSeq := int64(0)
	for _, rec := range pending {
		if n, ok := parseJobID(rec.ID); ok && n > maxSeq {
			maxSeq = n
		}
	}
	for {
		cur := s.jobSeq.Load()
		if cur >= maxSeq || s.jobSeq.CompareAndSwap(cur, maxSeq) {
			break
		}
	}

	for _, rec := range pending {
		var req SolveRequest
		if err := json.Unmarshal(rec.Data, &req); err != nil {
			// A journaled request that no longer parses cannot be replayed;
			// retire it rather than crash-looping the daemon on it forever.
			_ = s.wal.Commit(rec.ID)
			continue
		}
		if err := s.recoverJob(rec.ID, req); err != nil {
			_ = s.wal.Commit(rec.ID)
			continue
		}
		s.recovered.Add(1)
	}
	return int(s.recovered.Load()), nil
}

// recoverJob re-enqueues one journaled job under its original ID. The
// original deadline (wall-clock of a dead process) is meaningless, so the
// replay runs without one; shedding is disabled so the replay is a full
// solve, exactly as accepted.
func (s *Server) recoverJob(id string, req SolveRequest) error {
	if err := req.Normalize(); err != nil {
		return err
	}
	p, err := s.prepare(&req)
	if err != nil {
		return err
	}
	rec := s.jobs.create(id)
	start := time.Now()
	go func() {
		resp := s.executeRecovered(&req, p, id, start)
		rec.store(resp)
		s.journalCommit(id)
	}()
	return nil
}

// executeRecovered runs a replayed job, absorbing transient queue-full
// rejections: recovery can momentarily flood the scheduler with more
// pending jobs than the queue holds, and dropping an accepted job there
// would violate the no-loss contract. Bounded retries keep a genuinely
// wedged scheduler from hanging recovery forever; a job still rejected
// after the budget stays uncommitted and is retried on the next boot.
func (s *Server) executeRecovered(req *SolveRequest, p prepared, id string, start time.Time) SolveResponse {
	const (
		attempts = 200
		pause    = 25 * time.Millisecond
	)
	var resp SolveResponse
	for i := 0; i < attempts; i++ {
		resp = s.execute(context.Background(), req, p, id, start, false)
		if resp.Error != errQueueFull.Error() {
			return resp
		}
		time.Sleep(pause)
	}
	return resp
}

// journalBegin durably records an accepted async job. A nil journal (the
// default: no -journal flag) makes it a no-op.
func (s *Server) journalBegin(id string, req *SolveRequest) error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Begin(id, req)
}

// journalCommit retires a terminal job. Errors are swallowed: a failed
// commit means the job replays on next boot, which determinism makes
// harmless — strictly better than failing a job that actually finished.
func (s *Server) journalCommit(id string) {
	if s.wal == nil {
		return
	}
	_ = s.wal.Commit(id)
}

// parseJobID extracts N from "job-N".
func parseJobID(id string) (int64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
