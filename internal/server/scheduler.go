package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// errQueueFull is returned by submit when the job's priority queue is at
// capacity; the HTTP layer maps it to 503.
var errQueueFull = errors.New("server: submission queue full")

// errDraining is returned by submit once shutdown has begun.
var errDraining = errors.New("server: draining, not accepting jobs")

// job is one unit of scheduler work. The run closure performs the solve;
// the scheduler owns queueing, priority, deadline and drain semantics.
type job struct {
	id       string
	priority string
	// ctx carries the job deadline (and, for sync requests, client
	// disconnect). A job whose context is already done at dequeue time is
	// skipped without solving.
	ctx context.Context
	// run executes the solve. It must honour nothing beyond its argument:
	// the scheduler calls it exactly once or never.
	run func(ctx context.Context)
	// skipped is closed instead of run when the deadline expired in queue.
	skipped chan struct{}
}

// scheduler is a bounded two-priority queue feeding a fixed worker pool.
// Interactive jobs are scheduled strictly before batch jobs; within a
// class, FIFO. Shutdown stops admissions immediately and drains everything
// already accepted.
type scheduler struct {
	interactive chan *job
	batch       chan *job

	draining atomic.Bool
	wg       sync.WaitGroup // live workers
	stop     chan struct{}  // closed to let idle workers exit during drain

	inflight atomic.Int64 // jobs currently being solved
	done     atomic.Int64 // jobs completed (run returned)
	expired  atomic.Int64 // jobs skipped because their deadline passed in queue
}

func newScheduler(workers, queueDepth int) *scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	s := &scheduler{
		interactive: make(chan *job, queueDepth),
		batch:       make(chan *job, queueDepth),
		stop:        make(chan struct{}),
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// depth reports queued (not yet started) jobs across both classes.
func (s *scheduler) depth() int {
	return len(s.interactive) + len(s.batch)
}

// submit enqueues j without blocking. Full queue or active drain fail fast
// so the admission layer can shed instead of stalling the client.
func (s *scheduler) submit(j *job) error {
	if s.draining.Load() {
		return errDraining
	}
	q := s.interactive
	if j.priority == "batch" {
		q = s.batch
	}
	select {
	case q <- j:
		return nil
	default:
		return errQueueFull
	}
}

// worker pulls jobs with strict priority: interactive first, then batch.
func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		// Fast path: an interactive job is waiting.
		select {
		case j := <-s.interactive:
			s.execute(j)
			continue
		default:
		}
		select {
		case j := <-s.interactive:
			s.execute(j)
		case j := <-s.batch:
			s.execute(j)
		case <-s.stop:
			// Drain: consume whatever is still queued, then exit.
			for {
				select {
				case j := <-s.interactive:
					s.execute(j)
				case j := <-s.batch:
					s.execute(j)
				default:
					return
				}
			}
		}
	}
}

func (s *scheduler) execute(j *job) {
	select {
	case <-j.ctx.Done():
		// Deadline or disconnect while queued: never start the solve.
		s.expired.Add(1)
		close(j.skipped)
		return
	default:
	}
	s.inflight.Add(1)
	j.run(j.ctx)
	s.inflight.Add(-1)
	s.done.Add(1)
}

// drain stops admissions, lets the workers finish every accepted job, and
// returns nil once all workers exited — or an error if that took longer
// than timeout. In-flight solves are never abandoned; on timeout they keep
// running but the caller is free to exit.
func (s *scheduler) drain(timeout time.Duration) error {
	if s.draining.CompareAndSwap(false, true) {
		close(s.stop)
	}
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		// A submit racing the drain flag can land a job after the workers
		// exited; fail those jobs rather than leaving their clients hanging.
		for {
			select {
			case j := <-s.interactive:
				s.expired.Add(1)
				close(j.skipped)
			case j := <-s.batch:
				s.expired.Add(1)
				close(j.skipped)
			default:
				return nil
			}
		}
	case <-time.After(timeout):
		return fmt.Errorf("server: drain timed out after %v with %d jobs in flight",
			timeout, s.inflight.Load())
	}
}
