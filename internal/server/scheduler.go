package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// errQueueFull is returned by submit when the job's priority queue is at
// capacity; the HTTP layer maps it to 503.
var errQueueFull = errors.New("server: submission queue full")

// errDraining is returned by submit once shutdown has begun.
var errDraining = errors.New("server: draining, not accepting jobs")

// errWorkerPanic is the typed failure a job reports when the worker
// solving it panicked; the HTTP layer maps it to a 500 "failed" response.
// The panic is isolated to the job: the worker restarts and every other
// queued job proceeds.
var errWorkerPanic = errors.New("server: worker panicked during solve")

// job is one unit of scheduler work. The run closure performs the solve;
// the scheduler owns queueing, priority, deadline, panic and drain
// semantics.
type job struct {
	id       string
	priority string
	// ctx carries the job deadline (and, for sync requests, client
	// disconnect). A job whose context is already done at dequeue time is
	// skipped without solving.
	ctx context.Context
	// run executes the solve. It must honour nothing beyond its argument:
	// the scheduler calls it exactly once or never.
	run func(ctx context.Context)
	// skipped is closed instead of run when the deadline expired in queue.
	skipped chan struct{}
	// failed receives the typed error when the worker panicked mid-run
	// (buffered; nil for callers that do not care).
	failed chan error
}

// failPanic delivers the worker-panic failure to the job's waiter, if any.
func (j *job) failPanic(cause any) {
	if j.failed == nil {
		return
	}
	select {
	case j.failed <- fmt.Errorf("%w: %v", errWorkerPanic, cause):
	default:
	}
}

// scheduler is a bounded two-priority queue feeding a fixed worker pool.
// Interactive jobs are scheduled strictly before batch jobs; within a
// class, FIFO. Shutdown stops admissions immediately and drains everything
// already accepted.
//
// Workers are panic-isolated: a panic inside a job (or inside the chaos
// hook) fails that job with errWorkerPanic, and the worker goroutine
// replaces itself with a fresh one, so the pool never shrinks and queued
// jobs — including batch jobs journaled as accepted — survive the crash.
type scheduler struct {
	interactive chan *job
	batch       chan *job

	draining atomic.Bool
	wg       sync.WaitGroup // live worker slots
	stop     chan struct{}  // closed to let idle workers exit during drain

	// hook, when non-nil, runs on the worker goroutine before each job,
	// inside the panic-isolation boundary. It is the chaos injection seam:
	// a panicking hook exercises the same recovery path as a panicking
	// solve.
	hook func(seq int64, id string)

	execSeq  atomic.Int64 // jobs started (1-based execution order)
	inflight atomic.Int64 // jobs currently being solved
	done     atomic.Int64 // jobs completed (run returned or panicked)
	expired  atomic.Int64 // jobs skipped because their deadline passed in queue
	panics   atomic.Int64 // jobs failed by a worker panic
	restarts atomic.Int64 // worker goroutines replaced after a panic
}

func newScheduler(workers, queueDepth int) *scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	s := &scheduler{
		interactive: make(chan *job, queueDepth),
		batch:       make(chan *job, queueDepth),
		stop:        make(chan struct{}),
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// depth reports queued (not yet started) jobs across both classes.
func (s *scheduler) depth() int {
	return len(s.interactive) + len(s.batch)
}

// submit enqueues j without blocking. Full queue or active drain fail fast
// so the admission layer can shed instead of stalling the client.
func (s *scheduler) submit(j *job) error {
	if s.draining.Load() {
		return errDraining
	}
	q := s.interactive
	if j.priority == "batch" {
		q = s.batch
	}
	select {
	case q <- j:
		return nil
	default:
		return errQueueFull
	}
}

// worker pulls jobs with strict priority: interactive first, then batch.
// When a job panics, the worker restarts itself: it spawns a replacement
// goroutine (inheriting its WaitGroup slot, so drain accounting is exact)
// and retires. Deliberately a real goroutine swap rather than a bare
// continue — the replacement starts from a clean stack, and the restart is
// observable in maxisd_worker_restarts_total.
func (s *scheduler) worker() {
	for {
		// Fast path: an interactive job is waiting.
		select {
		case j := <-s.interactive:
			if s.execute(j) {
				s.restart()
				return
			}
			continue
		default:
		}
		select {
		case j := <-s.interactive:
			if s.execute(j) {
				s.restart()
				return
			}
		case j := <-s.batch:
			if s.execute(j) {
				s.restart()
				return
			}
		case <-s.stop:
			// Drain: consume whatever is still queued, then exit. A panic
			// mid-drain still restarts the worker; the replacement resumes
			// draining here.
			for {
				select {
				case j := <-s.interactive:
					if s.execute(j) {
						s.restart()
						return
					}
				case j := <-s.batch:
					if s.execute(j) {
						s.restart()
						return
					}
				default:
					s.wg.Done()
					return
				}
			}
		}
	}
}

// restart replaces the retiring worker goroutine with a fresh one. The
// replacement inherits the WaitGroup slot, so drain still waits for it.
func (s *scheduler) restart() {
	s.restarts.Add(1)
	go s.worker()
}

// execute runs one job inside the panic-isolation boundary and reports
// whether the job panicked (in its run closure or in the chaos hook). On
// panic the job is failed with errWorkerPanic; the caller restarts the
// worker.
func (s *scheduler) execute(j *job) (panicked bool) {
	select {
	case <-j.ctx.Done():
		// Deadline or disconnect while queued: never start the solve.
		s.expired.Add(1)
		close(j.skipped)
		return false
	default:
	}
	seq := s.execSeq.Add(1)
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.done.Add(1)
		if r := recover(); r != nil {
			panicked = true
			s.panics.Add(1)
			j.failPanic(r)
		}
	}()
	if s.hook != nil {
		s.hook(seq, j.id)
	}
	j.run(j.ctx)
	return false
}

// drain stops admissions, lets the workers finish every accepted job, and
// returns nil once all workers exited — or an error if that took longer
// than timeout. In-flight solves are never abandoned; on timeout they keep
// running but the caller is free to exit.
func (s *scheduler) drain(timeout time.Duration) error {
	if s.draining.CompareAndSwap(false, true) {
		close(s.stop)
	}
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		// A submit racing the drain flag can land a job after the workers
		// exited; fail those jobs rather than leaving their clients hanging.
		for {
			select {
			case j := <-s.interactive:
				s.expired.Add(1)
				close(j.skipped)
			case j := <-s.batch:
				s.expired.Add(1)
				close(j.skipped)
			default:
				return nil
			}
		}
	case <-time.After(timeout):
		return fmt.Errorf("server: drain timed out after %v with %d jobs in flight",
			timeout, s.inflight.Load())
	}
}
