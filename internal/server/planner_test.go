package server

import (
	"net/http"
	"strings"
	"testing"
)

// plannerSpec is a 400-node sparse weighted instance where the planner's
// tiers separate cleanly: Δ=8 keeps the local-ratio phase bound (Δ+1) far
// below the baseline's scale bound (log W+1 = 27), and the full-quality
// work estimate (~1.8M units) overshoots a 25ms deadline budget but fits a
// loose one.
func plannerSpec() *GenSpec {
	return &GenSpec{Kind: "gnp", N: 400, P: 0.008, Weights: "poly3", Seed: 1}
}

// A tight deadline with alg=auto must come back as a planner-selected
// few-round answer carrying its guarantee — not a blanket greedy degrade.
func TestPlannerAutoTightDeadline(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	code, resp := postSolve(t, ts, SolveRequest{
		Gen: plannerSpec(), Alg: "auto", DeadlineMS: 25,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, resp)
	}
	if resp.Alg != "bhr-fewround" {
		t.Errorf("tight deadline planned %q, want bhr-fewround", resp.Alg)
	}
	if resp.Degraded {
		t.Error("planner answer flagged degraded; budget-aware planning should replace blanket degradation")
	}
	if resp.Guarantee == "" || !strings.Contains(resp.Guarantee, "Δ+1") {
		t.Errorf("guarantee %q does not state the few-round expectation bound", resp.Guarantee)
	}
	if resp.Weight <= 0 || len(resp.Set) == 0 {
		t.Errorf("planned answer empty: weight=%d |set|=%d", resp.Weight, len(resp.Set))
	}
}

// A loose (or absent) deadline resolves auto to the full-quality tier.
func TestPlannerAutoLooseDeadline(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	for _, deadline := range []int64{0, 60_000} {
		code, resp := postSolve(t, ts, SolveRequest{
			Gen: plannerSpec(), Alg: "auto", DeadlineMS: deadline,
		})
		if code != http.StatusOK {
			t.Fatalf("deadline %d: status %d: %+v", deadline, code, resp)
		}
		if resp.Alg != "localratio" {
			t.Errorf("deadline %d planned %q, want localratio", deadline, resp.Alg)
		}
		if resp.Guarantee == "" {
			t.Errorf("deadline %d: missing guarantee string", deadline)
		}
	}
}

// Distinct deadlines are distinct cache entries: auto is resolved before
// the cache key is computed, so a tight-deadline answer can never be served
// to a loose-deadline request (or vice versa).
func TestPlannerAutoDeadlinesCacheSeparately(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	_, tight := postSolve(t, ts, SolveRequest{Gen: plannerSpec(), Alg: "auto", DeadlineMS: 25})
	_, loose := postSolve(t, ts, SolveRequest{Gen: plannerSpec(), Alg: "auto"})
	if tight.Alg == loose.Alg {
		t.Fatalf("both deadlines planned %q; expected distinct tiers", tight.Alg)
	}
	if loose.Weight < tight.Weight {
		t.Errorf("full-quality weight %d below few-round weight %d", loose.Weight, tight.Weight)
	}
	// Replaying the tight request must hit the cache and return the same
	// planned algorithm, not the loose entry.
	_, again := postSolve(t, ts, SolveRequest{Gen: plannerSpec(), Alg: "auto", DeadlineMS: 25})
	if again.Alg != tight.Alg || again.Weight != tight.Weight {
		t.Errorf("replay planned %q weight %d, want %q weight %d", again.Alg, again.Weight, tight.Alg, tight.Weight)
	}
	if !again.Cached {
		t.Error("replayed auto request missed the cache")
	}
}

// An explicit algorithm bypasses the planner and is echoed back unchanged.
func TestExplicitAlgBypassesPlanner(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	code, resp := postSolve(t, ts, SolveRequest{Gen: plannerSpec(), Alg: "baseline"})
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, resp)
	}
	if resp.Alg != "baseline" {
		t.Errorf("alg echoed as %q, want baseline", resp.Alg)
	}
	if planned := s.metrics.planned.Load(); planned != 0 {
		t.Errorf("planner counter %d after an explicit-alg request", planned)
	}
}
