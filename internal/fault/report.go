package fault

import (
	"fmt"

	"distmwis/internal/graph"
)

// SafetyReport is the post-run validation of a protocol's output under
// faults. Independence is the safety invariant every hardened protocol
// must keep unconditionally; weight retention against the fault-free run
// on the same seed quantifies graceful degradation (the liveness side,
// which faults are allowed to hurt).
type SafetyReport struct {
	// Independent reports that no edge of the graph has both endpoints in
	// the output set.
	Independent bool
	// Violations counts edges with both endpoints in the set.
	Violations int
	// FirstEdge is one violating edge when Violations > 0.
	FirstEdge [2]int
	// Size and Weight describe the output set.
	Size   int
	Weight int64
	// Baseline is the fault-free weight on the same seed (0 = unknown).
	Baseline int64
	// Retention is Weight/Baseline when Baseline > 0.
	Retention float64
	// Truncated reports that the faulty run hit its round budget before
	// all nodes halted.
	Truncated bool
}

// CheckIndependence validates set as an independent set of g and fills the
// safety half of the report.
func CheckIndependence(g *graph.Graph, set []bool) SafetyReport {
	r := SafetyReport{Independent: true}
	if len(set) != g.N() {
		r.Independent = false
		return r
	}
	for v := 0; v < g.N(); v++ {
		if !set[v] {
			continue
		}
		r.Size++
		r.Weight += g.Weight(v)
		for _, u := range g.Neighbors(v) {
			if int(u) > v && set[u] {
				if r.Violations == 0 {
					r.FirstEdge = [2]int{v, int(u)}
				}
				r.Violations++
			}
		}
	}
	r.Independent = r.Violations == 0
	return r
}

// Compare extends CheckIndependence with the degradation comparison
// against a fault-free baseline weight obtained on the same seed.
func Compare(g *graph.Graph, set []bool, baseline int64, truncated bool) SafetyReport {
	r := CheckIndependence(g, set)
	r.Baseline = baseline
	r.Truncated = truncated
	if baseline > 0 {
		r.Retention = float64(r.Weight) / float64(baseline)
	}
	return r
}

// Err returns nil when the safety invariant holds and a descriptive error
// otherwise.
func (r SafetyReport) Err() error {
	if r.Independent {
		return nil
	}
	return fmt.Errorf("fault: output violates independence: %d monochromatic edges, first {%d,%d}",
		r.Violations, r.FirstEdge[0], r.FirstEdge[1])
}
