// Package fault_test is an external test package: it exercises the fault
// layer through MIS protocols, and internal/mis now reaches back to this
// package via internal/protocol, so an in-package test would be an import
// cycle.
package fault_test

import (
	"reflect"
	"testing"

	"distmwis/internal/congest"
	. "distmwis/internal/fault"
	"distmwis/internal/graph/gen"
	"distmwis/internal/mis"
	"distmwis/internal/wire"
)

// floodMax floods the maximum ID for a fixed number of rounds; a simple
// deterministic protocol for engine-identity tests.
type floodMax struct {
	info   congest.NodeInfo
	best   uint64
	rounds int
}

func (p *floodMax) Init(info congest.NodeInfo) {
	p.info = info
	p.best = info.ID
}

func (p *floodMax) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	for _, m := range recv {
		if m == nil {
			continue
		}
		id, err := m.Reader().ReadUint(p.info.MaxID)
		if err != nil {
			continue
		}
		if id > p.best {
			p.best = id
		}
	}
	if round > p.rounds {
		return nil, true
	}
	var w wire.Writer
	w.WriteUint(p.best, p.info.MaxID)
	m := congest.NewMessage(&w)
	out := make([]*congest.Message, p.info.Degree)
	for i := range out {
		out[i] = m
	}
	return out, false
}

func (p *floodMax) Output() any { return p.best }

// TestZeroScheduleIdentity is the acceptance criterion for the delivery
// hook: installing an injector with an empty schedule must leave protocol
// outputs byte-identical to a run without any injector, under both the
// sequential and the worker-pool engine.
func TestZeroScheduleIdentity(t *testing.T) {
	g := gen.GNP(200, 0.04, 11)
	newProc := func() congest.Process { return &floodMax{rounds: 12} }
	clean, err := congest.Run(g, newProc, congest.WithSeed(5), congest.WithEngine(congest.EngineSequential))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts []congest.Option
	}{
		{name: "sequential", opts: []congest.Option{congest.WithEngine(congest.EngineSequential)}},
		{name: "pool", opts: []congest.Option{congest.WithEngine(congest.EnginePool), congest.WithWorkers(8)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inj := NewInjector(Schedule{Seed: 99})
			opts := append(tc.opts, congest.WithSeed(5), congest.WithFaults(inj))
			res, err := congest.Run(g, newProc, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(clean.Outputs, res.Outputs) {
				t.Error("zero-schedule injector changed protocol outputs")
			}
			if res.FaultLost != 0 || res.FaultCorrupted != 0 || res.FaultDuplicated != 0 {
				t.Error("zero-schedule injector reported interventions")
			}
		})
	}
}

// TestReplayDeterminism: the same schedule, graph and seed reproduce the
// exact same outputs and fault counters, independent of the engine.
func TestReplayDeterminism(t *testing.T) {
	g := gen.GNP(150, 0.05, 3)
	sched := Schedule{Seed: 42, Loss: 0.2, Dup: 0.1, Corrupt: 0.1, CrashFrac: 0.1, CrashAt: 2}
	run := func(engine congest.Engine) (*congest.Result, Stats) {
		inj := NewInjector(sched)
		res, err := congest.Run(g, func() congest.Process { return &floodMax{rounds: 10} },
			congest.WithSeed(7), congest.WithFaults(inj), congest.WithEngine(engine))
		if err != nil {
			t.Fatal(err)
		}
		return res, inj.Stats()
	}
	a, sa := run(congest.EngineSequential)
	b, sb := run(congest.EngineSequential)
	c, sc := run(congest.EnginePool)
	if !reflect.DeepEqual(a.Outputs, b.Outputs) || sa != sb {
		t.Error("same schedule did not replay identically")
	}
	if !reflect.DeepEqual(a.Outputs, c.Outputs) || sa != sc {
		t.Error("fault injection depends on the execution engine")
	}
	if sa.Lost == 0 || sa.Duplicated == 0 || sa.Corrupted == 0 {
		t.Errorf("schedule injected nothing: %+v", sa)
	}
	if a.FaultLost == 0 {
		t.Error("result carries no fault counters")
	}
}

// TestMISIndependenceUnderFaults: the hardened MIS protocols keep their
// safety invariant under aggressive schedules, including truncation.
func TestMISIndependenceUnderFaults(t *testing.T) {
	g := gen.GNP(120, 0.06, 17)
	scheds := []Schedule{
		{Seed: 1, Loss: 0.3, Dup: 0.15, Corrupt: 0.15},
		{Seed: 2, CrashFrac: 0.25, CrashAt: 2},
		{Seed: 3, CrashFrac: 0.2, CrashAt: 2, CrashBack: 5},
		{Seed: 4, Loss: 0.5, CrashFrac: 0.2, CrashAt: 1, MaxRounds: 6},
	}
	for _, alg := range []mis.Algorithm{mis.Luby{}, mis.Ghaffari{}, mis.Rank{}, mis.GreedyByID{}} {
		for i, sched := range scheds {
			inj := NewInjector(sched)
			res, err := congest.Run(g, alg.NewProcess,
				congest.WithSeed(23), congest.WithFaults(inj),
				congest.WithHardStop(sched.HardStop(g.N())))
			if err != nil {
				t.Fatalf("%s schedule %d: %v", alg.Name(), i, err)
			}
			set := congest.BoolOutputs(res)
			if rep := CheckIndependence(g, set); !rep.Independent {
				t.Errorf("%s schedule %d: %v", alg.Name(), i, rep.Err())
			}
		}
	}
}

func TestCrashStateWindows(t *testing.T) {
	inj := NewInjector(Schedule{Crashes: []Crash{
		{Node: 0, At: 3},          // crash-stop
		{Node: 1, At: 2, Back: 5}, // crash-recovery
	}})
	inj.Begin(4)
	cases := []struct {
		round, v int
		want     congest.NodeState
	}{
		{1, 0, congest.NodeUp},
		{2, 0, congest.NodeUp},
		{3, 0, congest.NodeStopped},
		{9, 0, congest.NodeStopped},
		{1, 1, congest.NodeUp},
		{2, 1, congest.NodeDown},
		{4, 1, congest.NodeDown},
		{5, 1, congest.NodeUp},
		{7, 2, congest.NodeUp},
	}
	for _, tc := range cases {
		if got := inj.State(tc.round, tc.v); got != tc.want {
			t.Errorf("State(%d, %d) = %v, want %v", tc.round, tc.v, got, tc.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Schedule{Loss: 1.5}).Validate(); err == nil {
		t.Error("accepted loss > 1")
	}
	if err := (Schedule{CrashFrac: -0.1}).Validate(); err == nil {
		t.Error("accepted negative crash fraction")
	}
	if err := (Schedule{Crashes: []Crash{{Node: 0, At: 5, Back: 4}}}).Validate(); err == nil {
		t.Error("accepted recovery before crash")
	}
	if err := (Schedule{CrashAt: 4, CrashBack: 2}).Validate(); err == nil {
		t.Error("accepted global recovery before crash")
	}
	if err := (Schedule{Loss: 0.5, Dup: 1, CrashAt: 2, CrashBack: 3}).Validate(); err != nil {
		t.Errorf("rejected valid schedule: %v", err)
	}
	if err := (Schedule{Crashes: []Crash{{Node: -1, At: 2}}}).Validate(); err == nil {
		t.Error("accepted negative crash node")
	}
	if err := (Schedule{Crashes: []Crash{{Node: 0, At: -3}}}).Validate(); err == nil {
		t.Error("accepted negative crash round")
	}
	if err := (Schedule{Crashes: []Crash{{Node: 2, At: 1}, {Node: 2, At: 5}}}).Validate(); err == nil {
		t.Error("accepted duplicate crash entries for one node")
	}
	if err := (Schedule{CrashAt: -1}).Validate(); err == nil {
		t.Error("accepted negative global crash round")
	}
}

func TestValidateFor(t *testing.T) {
	s := Schedule{Crashes: []Crash{{Node: 7, At: 2}}}
	if err := s.ValidateFor(8); err != nil {
		t.Errorf("rejected in-range crash node: %v", err)
	}
	if err := s.ValidateFor(7); err == nil {
		t.Error("accepted out-of-range crash node")
	}
	// ValidateFor must also run the plain checks.
	if err := (Schedule{Loss: 2}).ValidateFor(10); err == nil {
		t.Error("ValidateFor skipped probability checks")
	}
}

func TestScheduleEnabled(t *testing.T) {
	if (Schedule{Seed: 9}).Enabled() {
		t.Error("seed-only schedule reported enabled")
	}
	for _, s := range []Schedule{
		{Loss: 0.1}, {Dup: 0.1}, {Corrupt: 0.1}, {CrashFrac: 0.1},
		{Crashes: []Crash{{Node: 0, At: 1}}}, {MaxRounds: 5},
	} {
		if !s.Enabled() {
			t.Errorf("schedule %+v reported disabled", s)
		}
	}
}

// FuzzInjectorCorruptDetect: for arbitrary payloads and coordinates, the
// corruption path never panics, never violates the bandwidth (the bit
// length is preserved), and never produces a payload that still passes the
// original checksum — corrupt is always detectable loss.
func FuzzInjectorCorruptDetect(f *testing.F) {
	f.Add([]byte{0xAB, 0xCD}, 13, uint64(7), 3, 0, 1)
	f.Add([]byte{0x01}, 1, uint64(0), 1, 5, 9)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, 32, uint64(1234), 100, 2, 2)
	f.Fuzz(func(t *testing.T, data []byte, nbits int, seed uint64, round, from, to int) {
		if len(data) == 0 {
			return
		}
		if nbits < 1 {
			nbits = 1
		}
		if nbits > len(data)*8 {
			nbits = len(data) * 8
		}
		m := congest.NewRawMessage(data, nbits)
		sum := wire.Checksum(data, nbits)
		inj := NewInjector(Schedule{Seed: seed, Corrupt: 1})
		out, dup := inj.Deliver(round, from, to, m)
		if dup {
			t.Fatal("corrupt-only schedule requested a duplicate")
		}
		if out == nil {
			t.Fatal("corrupt-only schedule dropped the message")
		}
		if out.Bits() != nbits {
			t.Fatalf("corruption changed the bit length: %d -> %d", nbits, out.Bits())
		}
		if wire.Checksum(out.Data(), nbits) == sum {
			t.Fatal("flipped payload still passes the original checksum")
		}
	})
}
