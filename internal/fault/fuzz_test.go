package fault_test

import (
	"math"
	"reflect"
	"testing"

	"distmwis/internal/congest"
	. "distmwis/internal/fault"
	"distmwis/internal/graph/gen"
	"distmwis/internal/mis"
)

// FuzzEngineFaultDeterminism checks the engine-identity contract under
// arbitrary message-fault schedules: for any (seed, loss, dup, corrupt) the
// sequential, pool and actor engines must produce byte-identical outputs,
// identical round/message/bit totals, and identical injector statistics.
// The injector is the only randomness besides the protocol seed, so any
// divergence means a scheduling-order dependence leaked into the fault
// layer or the simulator.
func FuzzEngineFaultDeterminism(f *testing.F) {
	f.Add(uint64(1), 0.2, 0.0, 0.1)
	f.Add(uint64(2), 0.5, 0.5, 0.5)
	f.Add(uint64(3), 0.0, 0.0, 0.0)
	f.Add(uint64(4), 0.9, 0.3, 0.2)
	g := gen.Weighted(gen.GNP(48, 0.1, 7), gen.PolyWeights(1), 8)
	f.Fuzz(func(t *testing.T, seed uint64, loss, dup, corrupt float64) {
		for _, p := range []float64{loss, dup, corrupt} {
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Skip("probability outside [0,1]")
			}
		}
		sched := Schedule{Seed: seed, Loss: loss, Dup: dup, Corrupt: corrupt}
		if err := sched.Validate(); err != nil {
			t.Skip(err)
		}
		type outcome struct {
			res   *congest.Result
			stats Stats
		}
		run := func(engine congest.Engine) outcome {
			inj := NewInjector(sched)
			res, err := congest.Run(g, mis.Luby{}.NewProcess, congest.WithSeed(21),
				congest.WithEngine(engine), congest.WithFaults(inj),
				congest.WithHardStop(400))
			if err != nil {
				t.Fatalf("engine %v: %v", engine, err)
			}
			return outcome{res, inj.Stats()}
		}
		seq := run(congest.EngineSequential)
		for name, engine := range map[string]congest.Engine{
			"pool":   congest.EnginePool,
			"actors": congest.EngineActors,
		} {
			o := run(engine)
			if !reflect.DeepEqual(seq.res.Outputs, o.res.Outputs) {
				t.Errorf("%s outputs diverge from sequential", name)
			}
			if seq.res.Rounds != o.res.Rounds || seq.res.Messages != o.res.Messages ||
				seq.res.Bits != o.res.Bits || seq.res.Truncated != o.res.Truncated {
				t.Errorf("%s totals diverge: %+v vs %+v", name, seq.res, o.res)
			}
			if seq.stats != o.stats {
				t.Errorf("%s fault stats diverge: %+v vs %+v", name, seq.stats, o.stats)
			}
		}
	})
}
