// Package fault implements a deterministic, seeded fault adversary for the
// congest simulator, plus the post-run safety validation that quantifies
// how gracefully the paper's MaxIS protocols degrade under it.
//
// The paper (and the follow-ups in PAPERS.md) assume a perfectly
// synchronous, failure-free network. This package relaxes that: an
// adversary Schedule drops, duplicates, and bit-corrupts messages per edge
// per round, and crashes nodes (permanently or transiently) at chosen
// rounds. Every decision derives from an explicit PCG seed and the
// (round, sender, receiver) coordinates alone — no hidden state — so a run
// is exactly replayable from its Schedule and independent of the execution
// engine.
//
// The division of guarantees under faults is:
//
//   - safety (the output is an independent set) must hold unconditionally —
//     the hardened protocols only ever join on full, checksum-clean
//     information from every live neighbour;
//   - liveness/quality (weight of the set, round count) degrade with the
//     fault rate; SafetyReport quantifies the degradation against the
//     fault-free run on the same seed.
package fault

import (
	"fmt"
	"math/rand/v2"

	"distmwis/internal/congest"
	"distmwis/internal/wire"
)

// Crash schedules one node fault. The node freezes from round At onwards:
// it executes no rounds and receives no messages. With Back == 0 the crash
// is permanent (crash-stop) and the simulator halts the node; otherwise
// the node resumes at round Back (crash-recovery) with its pre-crash state
// intact — everything sent to it while down is lost.
type Crash struct {
	Node int
	At   int
	Back int
}

// Schedule describes the adversary. The zero value is the empty (fault-free)
// schedule; Enabled reports whether it perturbs anything at all.
type Schedule struct {
	// Seed drives every probabilistic decision. Two runs with the same
	// Schedule, graph, and protocol seed are identical.
	Seed uint64

	// Loss, Dup and Corrupt are independent per-message probabilities in
	// [0,1]: dropping the message, additionally delivering a duplicate of
	// it one round later, and flipping a burst of up to wire.ChecksumBits
	// consecutive payload bits (always caught by the wire checksum, so a
	// corrupted message is effectively a detectable loss). A message can be
	// both lost and duplicated — the duplicate then acts as a one-round
	// delayed delivery.
	Loss    float64
	Dup     float64
	Corrupt float64

	// Crashes are explicit node faults, applied after CrashFrac.
	Crashes []Crash

	// CrashFrac crashes a uniformly drawn fraction of all nodes (chosen by
	// Seed) at round CrashAt (default 1). CrashBack, if positive, turns
	// those crashes into crash-recovery faults resuming at that round.
	CrashFrac float64
	CrashAt   int
	CrashBack int

	// MaxRounds overrides the per-phase round budget HardStop suggests for
	// running protocols under this schedule (0 = derive from NUpper).
	MaxRounds int
}

// Enabled reports whether the schedule perturbs the execution at all. A
// schedule with only MaxRounds set is a pure-truncation adversary: no
// message faults, but phases are cut off at the budget.
func (s Schedule) Enabled() bool {
	return s.Loss > 0 || s.Dup > 0 || s.Corrupt > 0 || s.CrashFrac > 0 ||
		len(s.Crashes) > 0 || s.MaxRounds > 0
}

// Validate rejects out-of-range probabilities and nonsensical crash rounds.
func (s Schedule) Validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("fault: %s probability %v outside [0,1]", name, p)
		}
		return nil
	}
	if err := check("loss", s.Loss); err != nil {
		return err
	}
	if err := check("dup", s.Dup); err != nil {
		return err
	}
	if err := check("corrupt", s.Corrupt); err != nil {
		return err
	}
	if err := check("crash-fraction", s.CrashFrac); err != nil {
		return err
	}
	seen := make(map[int]bool, len(s.Crashes))
	for _, c := range s.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("fault: crash names negative node %d", c.Node)
		}
		if c.At < 0 {
			return fmt.Errorf("fault: crash of node %d at negative round %d", c.Node, c.At)
		}
		if c.Back != 0 && c.Back <= c.At {
			return fmt.Errorf("fault: crash of node %d recovers at round %d, not after its crash round %d", c.Node, c.Back, c.At)
		}
		if seen[c.Node] {
			return fmt.Errorf("fault: node %d has more than one crash entry", c.Node)
		}
		seen[c.Node] = true
	}
	if s.CrashAt < 0 {
		return fmt.Errorf("fault: crash round %d is negative", s.CrashAt)
	}
	if s.CrashBack != 0 && s.CrashBack <= s.CrashAt {
		return fmt.Errorf("fault: crash recovery round %d not after crash round %d", s.CrashBack, s.CrashAt)
	}
	return nil
}

// ValidateFor runs Validate and additionally rejects crash entries naming
// nodes outside [0, n). Callers that know the graph size should prefer it:
// an out-of-range crash entry silently never fires, which almost always
// means a typo in the schedule rather than intent.
func (s Schedule) ValidateFor(n int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, c := range s.Crashes {
		if c.Node >= n {
			return fmt.Errorf("fault: crash names node %d, but the graph has only %d nodes", c.Node, n)
		}
	}
	return nil
}

// HardStop returns the round budget a single protocol phase should be
// capped at when running under this schedule. Faults can block termination
// (a node waiting forever on a lost message), so phases must be truncated;
// the default budget is a generous multiple of the O(log n) bounds all
// protocols in this repository target.
func (s Schedule) HardStop(nUpper int) int {
	if s.MaxRounds > 0 {
		return s.MaxRounds
	}
	if nUpper < 2 {
		nUpper = 2
	}
	return 64 * (wire.BitsFor(uint64(nUpper)) + 1)
}

// WithSeed returns a copy of the schedule reseeded by mixing in extra —
// used to give each phase of a multi-phase algorithm its own randomness
// while keeping the whole run a pure function of the original seed.
func (s Schedule) WithSeed(extra uint64) Schedule {
	out := s
	out.Seed = splitmix64(s.Seed ^ splitmix64(extra))
	return out
}

// Stats counts the injector's interventions, cumulatively across every run
// it is installed in.
type Stats struct {
	// Examined counts messages presented to the injector.
	Examined int64
	// Lost counts messages the injector dropped.
	Lost int64
	// Duplicated counts duplicate deliveries the injector requested.
	Duplicated int64
	// Corrupted counts messages the injector bit-flipped.
	Corrupted int64
}

func (st Stats) add(o Stats) Stats {
	st.Examined += o.Examined
	st.Lost += o.Lost
	st.Duplicated += o.Duplicated
	st.Corrupted += o.Corrupted
	return st
}

// Injector realises a Schedule as a congest.DeliveryHook. Each per-message
// decision is a pure function of (Seed, round, sender, receiver), so the
// injection is stateless, engine-independent, and replayable. The zero
// value is unusable; use NewInjector.
type Injector struct {
	sched Schedule
	stats *Stats
	// down[v] is v's crash window ({0,0} = never crashes). Written in
	// Begin, read-only afterwards, so State is safe for concurrent use
	// from engine workers.
	down []Crash
}

// NewInjector builds an injector for the schedule. The schedule should be
// validated first; probabilities are used as given.
func NewInjector(s Schedule) *Injector {
	return &Injector{sched: s, stats: &Stats{}}
}

// ShareStats makes the injector accumulate into st instead of its own
// counters, letting one Stats aggregate across the injectors of a
// multi-phase algorithm. Returns the injector for chaining.
func (inj *Injector) ShareStats(st *Stats) *Injector {
	inj.stats = st
	return inj
}

// Stats returns the counters accumulated so far.
func (inj *Injector) Stats() Stats { return *inj.stats }

// Schedule returns the schedule the injector was built from.
func (inj *Injector) Schedule() Schedule { return inj.sched }

// Begin materialises the crash schedule for an n-node run.
func (inj *Injector) Begin(n int) {
	inj.down = make([]Crash, n)
	if inj.sched.CrashFrac > 0 && n > 0 {
		k := int(inj.sched.CrashFrac * float64(n))
		if k > n {
			k = n
		}
		at := inj.sched.CrashAt
		if at < 1 {
			at = 1
		}
		rng := rand.New(rand.NewPCG(inj.sched.Seed, 0x9e3779b97f4a7c15))
		for _, v := range rng.Perm(n)[:k] {
			inj.down[v] = Crash{Node: v, At: at, Back: inj.sched.CrashBack}
		}
	}
	for _, c := range inj.sched.Crashes {
		if c.Node < 0 || c.Node >= n {
			continue
		}
		at := c.At
		if at < 1 {
			at = 1
		}
		inj.down[c.Node] = Crash{Node: c.Node, At: at, Back: c.Back}
	}
}

// State implements congest.DeliveryHook.
func (inj *Injector) State(round, v int) congest.NodeState {
	if v >= len(inj.down) {
		return congest.NodeUp
	}
	w := inj.down[v]
	switch {
	case w.At == 0 || round < w.At:
		return congest.NodeUp
	case w.Back == 0:
		return congest.NodeStopped
	case round < w.Back:
		return congest.NodeDown
	default:
		return congest.NodeUp
	}
}

// Deliver implements congest.DeliveryHook. The random draws for one
// message come from a PCG stream keyed by (round, from, to), consumed in a
// fixed order (dup, loss, corrupt), so every decision is reproducible in
// isolation.
func (inj *Injector) Deliver(round, from, to int, m *congest.Message) (*congest.Message, bool) {
	inj.stats.Examined++
	s := inj.sched
	if s.Loss == 0 && s.Dup == 0 && s.Corrupt == 0 {
		return m, false
	}
	rng := rand.New(rand.NewPCG(s.Seed, edgeKey(round, from, to)))
	dup := s.Dup > 0 && rng.Float64() < s.Dup
	if dup {
		inj.stats.Duplicated++
	}
	if s.Loss > 0 && rng.Float64() < s.Loss {
		inj.stats.Lost++
		return nil, dup
	}
	if s.Corrupt > 0 && rng.Float64() < s.Corrupt && m.Bits() > 0 {
		inj.stats.Corrupted++
		return corruptBurst(rng, m), dup
	}
	return m, dup
}

// corruptBurst flips a burst of 1..wire.ChecksumBits consecutive payload
// bits — exactly the error class a CRC-8 detects with certainty, so the
// receiver always recognises the damage and treats the message as lost
// rather than acting on a flipped payload.
func corruptBurst(rng *rand.Rand, m *congest.Message) *congest.Message {
	nbits := m.Bits()
	// AppendData + NewMessageOwned copy the payload exactly once: the
	// appended buffer is private to this call, mutated in place, and then
	// handed over. (Data + NewRawMessage would copy twice per corruption.)
	data := m.AppendData(nil)
	burst := 1 + rng.IntN(wire.ChecksumBits)
	if burst > nbits {
		burst = nbits
	}
	start := rng.IntN(nbits - burst + 1)
	for i := start; i < start+burst; i++ {
		data[i>>3] ^= 1 << uint(i&7)
	}
	return congest.NewMessageOwned(data, nbits)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// edgeKey mixes the delivery coordinates into a PCG stream key.
func edgeKey(round, from, to int) uint64 {
	k := splitmix64(uint64(round))
	k = splitmix64(k ^ uint64(from))
	return splitmix64(k ^ uint64(to))
}

var _ congest.DeliveryHook = (*Injector)(nil)
