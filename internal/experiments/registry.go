package experiments

// registry maps experiment IDs to titles and runners; see DESIGN.md §2 for
// the claim each one reproduces.
var registry = map[string]entry{
	"E1":  {title: "Good-nodes O(Δ)-approximation (Theorem 8)", run: runE1},
	"E2":  {title: "Weighted sparsification (Lemmas 3 and 5)", run: runE2},
	"E3":  {title: "(1+ε)Δ-approximation ratios (Theorem 1)", run: runE3},
	"E4":  {title: "Rounds vs n against the [8] baseline (Theorem 2)", run: runE4},
	"E5":  {title: "The log W factor (baseline [8])", run: runE5},
	"E6":  {title: "Boosting and the stack property (Theorem 10)", run: runE6},
	"E7":  {title: "Low-arboricity approximation (Theorem 3)", run: runE7},
	"E8":  {title: "Ranking concentration (Theorem 11)", run: runE8},
	"E9":  {title: "Sequential ranking equivalence (Proposition 3)", run: runE9},
	"E10": {title: "Low-degree unweighted graphs (Theorem 5)", run: runE10},
	"E11": {title: "Expectation vs w.h.p. ([17] baseline)", run: runE11},
	"E12": {title: "Lower-bound reduction machinery (Section 7)", run: runE12},
	"E13": {title: "Headline: approx-MaxIS vs MIS rounds", run: runE13},
	"E14": {title: "Colour-class approximation and the Ω(D) barrier (§8)", run: runE14},
	"E15": {title: "log* machinery: Cole–Vishkin ring MIS (§7)", run: runE15},
	"E16": {title: "LOCAL (1+ε)-approximation via LDD ([29] stand-in)", run: runE16},
	"E17": {title: "Communication profile / CONGEST compliance", run: runE17},
	"E18": {title: "Graceful degradation under fault injection", run: runE18},
	"E19": {title: "Round-resolved bit profiles (trace layer)", run: runE19},
	"E20": {title: "Reliable transport vs passive degradation (recovery sweep)", run: runE20},
	"E21": {title: "Algorithm portfolio head-to-head: rounds vs retention", run: runE21},
}
