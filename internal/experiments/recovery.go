package experiments

import (
	"fmt"

	"distmwis/internal/fault"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
)

// runE20 quantifies what the reliable transport buys over passive
// degradation on the E18 grid: for each adversary schedule the same
// pipeline runs once in passive fault mode (PR 1 semantics: faults land,
// weight degrades) and once with the ARQ transport installed, and both are
// compared against the fault-free run on the same seed. Under pure
// message faults the transport reproduces the fault-free execution
// bit-exactly (retention 1.00 by construction, not by luck), and the
// rounds/bits columns price that guarantee: physical rounds stretch with
// the retransmission traffic while the logical execution is unchanged.
// Crash rows make the crashes recoverable (CrashBack) and enable
// checkpointing, so recovering nodes resynchronise by snapshot replay; a
// final crash-stop row shows the one regime where even the transport
// cannot help (a dead neighbour holds no state), leaving the monitor's
// repair as the safety net.
func runE20(opts Options) (*Table, error) {
	trials := opts.trials(2, 1)
	n := 512
	if opts.Quick {
		n = 192
	}
	g := gen.Weighted(gen.GNP(n, 8/float64(n), opts.seed()), gen.PolyWeights(2), opts.seed())
	losses := []float64{0, 0.1, 0.3}
	if opts.Quick {
		losses = []float64{0, 0.1}
	}
	if opts.FaultRate > 0 {
		losses = []float64{opts.FaultRate}
	}
	faultSeed := opts.FaultSeed
	if faultSeed == 0 {
		faultSeed = opts.seed() + 177
	}

	type crashMode struct {
		name      string
		frac      float64
		back      int // 0 = crash-stop
		cpEvery   int
		repair    bool
		exactness bool // reliable run must reproduce the fault-free set exactly
	}
	grid := []struct {
		loss  float64
		crash crashMode
	}{}
	for _, loss := range losses {
		grid = append(grid, struct {
			loss  float64
			crash crashMode
		}{loss, crashMode{name: "none", exactness: true}})
	}
	recov := crashMode{name: "recover", frac: 0.1, back: 9, cpEvery: 8}
	stop := crashMode{name: "stop", frac: 0.1, repair: true}
	grid = append(grid,
		struct {
			loss  float64
			crash crashMode
		}{0.1, recov},
		struct {
			loss  float64
			crash crashMode
		}{0.1, stop},
	)

	t := &Table{
		ID:    "E20",
		Title: "Reliable transport vs passive degradation (recovery sweep)",
		Claim: "with the ARQ transport, message faults cost physical rounds and bits but zero weight",
		Columns: []string{
			"loss", "crash", "passive ret", "reliable ret", "exact",
			"round ovh", "bit ovh", "retransmits", "recoveries", "dead ports",
		},
	}

	run := maxis.GoodNodes
	for _, cell := range grid {
		sumPassive, sumReliable := 0.0, 0.0
		exact := true
		var baseRounds, relRounds, baseBits, relBits int64
		var retx, recoveries, deadPorts int64
		for trial := 0; trial < trials; trial++ {
			seed := opts.seed() + uint64(trial)
			base, err := run(g, maxis.Config{Seed: seed})
			if err != nil {
				return nil, err
			}
			sched := fault.Schedule{
				Seed:      faultSeed + uint64(trial),
				Loss:      cell.loss,
				Dup:       cell.loss / 2,
				Corrupt:   cell.loss / 2,
				CrashFrac: cell.crash.frac,
				CrashAt:   3,
				CrashBack: cell.crash.back,
			}
			passive, err := run(g, maxis.Config{Seed: seed, Faults: sched, Repair: true})
			if err != nil {
				return nil, err
			}
			reliable, err := run(g, maxis.Config{
				Seed:            seed,
				Faults:          sched,
				Reliable:        true,
				CheckpointEvery: cell.crash.cpEvery,
				Repair:          cell.crash.repair,
			})
			if err != nil {
				return nil, err
			}
			for _, res := range []*maxis.Result{passive, reliable} {
				if !g.IsIndependentSet(res.Set) {
					return nil, fmt.Errorf("%s: run returned a dependent set", t.ID)
				}
			}
			sumPassive += float64(passive.Weight) / float64(base.Weight)
			sumReliable += float64(reliable.Weight) / float64(base.Weight)
			if cell.crash.exactness && !graph.SameSet(base.Set, reliable.Set) {
				exact = false
			}
			baseRounds += int64(base.Metrics.Rounds)
			relRounds += int64(reliable.Metrics.Rounds)
			baseBits += base.Metrics.Bits
			relBits += reliable.Metrics.Bits
			retx += reliable.Metrics.Retransmits
			recoveries += reliable.Metrics.Recoveries
			deadPorts += reliable.Metrics.DeadPorts
		}
		ft := float64(trials)
		exactCol := "n/a"
		if cell.crash.exactness {
			exactCol = fbool(exact)
		}
		t.Rows = append(t.Rows, []string{
			ff(cell.loss), cell.crash.name,
			ff(sumPassive / ft), ff(sumReliable / ft), exactCol,
			ff(float64(relRounds) / float64(baseRounds)),
			ff(float64(relBits) / float64(baseBits)),
			f64(retx), f64(recoveries), f64(deadPorts),
		})
	}
	t.Notes = append(t.Notes,
		"Retention is w(I)/w(I_fault-free) on the same seed; \"exact\" additionally checks the reliable run returned the identical set, which the transport guarantees for message faults (loss/dup/corrupt) with crash=none.",
		"Round and bit overheads are reliable-run totals over fault-free totals: the price of exactness is physical rounds (retransmission stretching) and header bits (3·log roundBound + 4 per frame).",
		"crash=recover rows make crashes recoverable (CrashBack=9) with checkpoints every 8 logical rounds, so recovering nodes resynchronise by snapshot replay (recoveries column); checkpointing re-derives the per-node randomness stream, so exactness vs the checkpoint-free baseline is not expected there.",
		"crash=stop is the adversary the transport cannot beat — a crash-stopped neighbour holds no state to retransmit — so ports are declared dead (dead ports column), the run is cut at the stretched hard stop, and the self-healing monitor repairs any conflicts before the safety check.",
	)
	return t, nil
}
