package experiments

import (
	"distmwis/internal/exact"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
)

// runE7 validates Theorem 3/12: the 8(1+ε)α-approximation beats the
// Δ-based guarantee whenever α < Δ/(8(1+ε)), at an O(log n) factor in
// rounds.
func runE7(opts Options) (*Table, error) {
	eps := 0.5
	t := &Table{
		ID:    "E7",
		Title: "Low-arboricity approximation (Theorem 3, Algorithm 6)",
		Claim: "8(1+ε)α-approximation in O(T·log n) rounds; beats (1+ε)Δ when α < Δ/(8(1+ε))",
		Columns: []string{
			"graph", "n", "α", "Δ", "OPT (or UB)", "w(I) thm3", "ratio",
			"guarantee 8(1+ε)α", "held", "(1+ε)Δ for comparison", "phases", "rounds",
		},
	}
	type workload struct {
		name  string
		g     *graph.Graph
		alpha int
		exact bool // forest ⇒ exact OPT available
	}
	workloads := []workload{
		{name: "tree", g: gen.Weighted(gen.RandomTree(800, opts.seed()), gen.UniformWeights(1000), opts.seed()), alpha: 1, exact: true},
		{name: "caterpillar", g: gen.Weighted(gen.Caterpillar(50, 40), gen.UniformWeights(500), opts.seed()+1), alpha: 1, exact: true},
		{name: "heavy-hubs", g: heavyHubCaterpillar(50, 40), alpha: 1, exact: true},
		{name: "forests-2", g: gen.Weighted(gen.UnionOfForests(600, 2, opts.seed()+2), gen.UniformWeights(256), opts.seed()+2), alpha: 2},
		{name: "forests-4", g: gen.Weighted(gen.UnionOfForests(600, 4, opts.seed()+3), gen.UniformWeights(256), opts.seed()+3), alpha: 4},
		{name: "apollonian", g: gen.Weighted(gen.Apollonian(500, opts.seed()+4), gen.PolyWeights(1), opts.seed()+4), alpha: 3},
	}
	if opts.Quick {
		workloads = workloads[:3]
	}
	for _, wl := range workloads {
		var opt float64
		optLabel := ""
		if wl.exact {
			v, _, err := exact.ForestMWIS(wl.g)
			if err != nil {
				return nil, err
			}
			opt = float64(v)
			optLabel = f64(v)
		} else {
			v := exact.CliqueCoverUpperBound(wl.g)
			opt = float64(v)
			optLabel = f64(v) + " (UB)"
		}
		res, err := maxis.Theorem3(wl.g, wl.alpha, eps, maxis.Config{Seed: opts.seed()})
		if err != nil {
			return nil, err
		}
		ratio := opt / float64(res.Weight)
		guar := maxis.Guarantee8Alpha(wl.alpha, eps)
		t.Rows = append(t.Rows, []string{
			wl.name, fi(wl.g.N()), fi(wl.alpha), fi(wl.g.MaxDegree()),
			optLabel, f64(res.Weight), ff(ratio), ff(guar),
			fbool(ratio <= guar+1e-9),
			ff(maxis.GuaranteeDelta(wl.g.MaxDegree(), eps)),
			fi(res.Phases), fi(res.Metrics.Rounds),
		})
	}
	// α-free row: Theorem3Auto estimates the arboricity distributedly
	// (peeling) before running Algorithm 6.
	autoG := gen.Weighted(gen.Apollonian(500, opts.seed()+4), gen.PolyWeights(1), opts.seed()+4)
	auto, err := maxis.Theorem3Auto(autoG, eps, maxis.Config{Seed: opts.seed()})
	if err != nil {
		return nil, err
	}
	autoUB := exact.CliqueCoverUpperBound(autoG)
	alphaHat := int(auto.Extra["alpha_estimate"])
	t.Rows = append(t.Rows, []string{
		"apollonian (α estimated)", fi(autoG.N()), fi(alphaHat) + " (est)", fi(autoG.MaxDegree()),
		f64(autoUB) + " (UB)", f64(auto.Weight), ff(float64(autoUB) / float64(auto.Weight)),
		ff(maxis.Guarantee8Alpha(alphaHat, eps)),
		fbool(float64(autoUB)/float64(auto.Weight) <= maxis.Guarantee8Alpha(alphaHat, eps)+1e-9),
		ff(maxis.GuaranteeDelta(autoG.MaxDegree(), eps)),
		fi(auto.Phases), fi(auto.Metrics.Rounds),
	})

	t.Notes = append(t.Notes,
		"For non-forest workloads OPT is replaced by the certified clique-cover upper bound, so the reported ratio is itself an upper bound on the true ratio.",
		"On the caterpillar (α=1, Δ=42) the arboricity guarantee 12 beats the degree guarantee 63 — the α < Δ/(8(1+ε)) regime the theorem targets.",
		"heavy-hubs weights the high-degree spine so it survives the first round of reductions: the run needs a second phase, exercising Algorithm 6's peeling loop.",
	)
	return t, nil
}

// heavyHubCaterpillar builds a caterpillar whose spine nodes carry weight
// far exceeding their legs' total, so the spine survives the first
// local-ratio reduction and Algorithm 6 needs a second peeling phase.
func heavyHubCaterpillar(spine, legs int) *graph.Graph {
	g := gen.Caterpillar(spine, legs)
	w := make([]int64, g.N())
	for v := range w {
		if v < spine {
			w[v] = int64(legs) * 1000 // ≫ sum of its legs' weights
		} else {
			w[v] = 1 + int64(v%7)
		}
	}
	return g.WithWeights(w)
}
