package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestIDsOrderedAndComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 21 {
		t.Fatalf("registry has %d experiments, want 21", len(ids))
	}
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21"}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("IDs()[%d] = %s, want %s", i, ids[i], id)
		}
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("%s has no title", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("E99", Options{}); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "EX",
		Title:   "Example",
		Claim:   "claim text",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4,5"}},
		Notes:   []string{"a note"},
	}
	md := tab.Markdown()
	for _, want := range []string{"### EX — Example", "| a | b |", "| 3 | 4,5 |", "> a note", "claim text"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "a,b\n1,2\n3,\"4,5\"\n") {
		t.Errorf("csv wrong:\n%s", csv)
	}
}

// TestCSVRoundTrip feeds tables with every RFC 4180 special character
// through encoding/csv and requires the cells back verbatim.
func TestCSVRoundTrip(t *testing.T) {
	tab := &Table{
		Columns: []string{"plain", "comma, inside", `quote "q"`, "line\nbreak"},
		Rows: [][]string{
			{"1", "a,b", `say "hi"`, "x\ny"},
			{"", ",", `""`, "\n"},
		},
	}
	r := csv.NewReader(strings.NewReader(tab.CSV()))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("encoding/csv rejected Table.CSV output: %v", err)
	}
	want := append([][]string{tab.Columns}, tab.Rows...)
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		for j, cell := range rec {
			// encoding/csv normalizes \r\n to \n inside quoted fields; the
			// table never emits \r so a direct compare is exact.
			if cell != want[i][j] {
				t.Errorf("record %d cell %d = %q, want %q", i, j, cell, want[i][j])
			}
		}
	}
}

// TestQuickExperimentsProduceRows smoke-tests a representative subset of
// the registry in quick mode; the full suite is exercised by
// cmd/experiments and bench_test.go.
func TestQuickExperimentsProduceRows(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, id := range []string{"E1", "E3", "E6", "E9", "E12", "E19"} {
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, Options{Quick: true, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("row %d has %d cells for %d columns", i, len(row), len(tab.Columns))
				}
			}
			// Any "held" column must be uniformly "yes".
			for ci, col := range tab.Columns {
				if col != "held" && col != "guarantee held" && col != "all MIS valid" {
					continue
				}
				for ri, row := range tab.Rows {
					if row[ci] != "yes" && row[ci] != "-" {
						t.Errorf("%s row %d: %s = %q, want yes", id, ri, col, row[ci])
					}
				}
			}
		})
	}
}

// TestAllExperimentsQuick runs the complete registry in quick mode: every
// runner must produce a well-formed table with no guarantee violations.
// Takes tens of seconds; skipped with -short.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped with -short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tab, err := Run(id, Options{Quick: true, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
				t.Fatal("empty table")
			}
			if tab.Claim == "" || tab.Title == "" {
				t.Error("missing claim or title")
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("row %d has %d cells for %d columns", i, len(row), len(tab.Columns))
				}
			}
			for ci, col := range tab.Columns {
				switch col {
				case "held", "guarantee held", "all MIS valid", "compliant", "MIS valid", "≥ bound", "Cor1 held", "stack ≤ w(I)", "independent":
					for ri, row := range tab.Rows {
						if row[ci] != "yes" && row[ci] != "-" {
							t.Errorf("row %d: %s = %q", ri, col, row[ci])
						}
					}
				}
			}
		})
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seed() != 1 {
		t.Errorf("default seed = %d, want 1", o.seed())
	}
	if o.trials(10, 3) != 10 {
		t.Error("full trials wrong")
	}
	o.Quick = true
	if o.trials(10, 3) != 3 {
		t.Error("quick trials wrong")
	}
	o.Trials = 7
	if o.trials(10, 3) != 7 {
		t.Error("override trials wrong")
	}
}
