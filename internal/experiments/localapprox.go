package experiments

import (
	"distmwis/internal/exact"
	"distmwis/internal/graph/gen"
	"distmwis/internal/localapprox"
	"distmwis/internal/maxis"
)

// runE16 exercises the LOCAL-model (1+ε)-approximation of the Related Work
// ([29], here realized by the low-diameter-decomposition scheme in
// internal/localapprox): the achieved ratio approaches 1 as ε shrinks, at
// the cost of rounds growing with the cluster radius O(log n / β) — a
// different trade-off axis than the CONGEST (1+ε)Δ results.
func runE16(opts Options) (*Table, error) {
	trials := opts.trials(5, 2)
	t := &Table{
		ID:    "E16",
		Title: "LOCAL (1+ε)-approximation via low-diameter decomposition ([29] stand-in)",
		Claim: "(1+ε)-approximation in poly(log n/ε) LOCAL rounds; ratio → 1 as ε → 0",
		Columns: []string{
			"graph", "n", "Δ", "ε", "OPT", "mean w(I)", "best w(I)", "ratio (best)",
			"rounds (mean)", "cut nodes (mean)", "exact clusters",
		},
	}
	g := gen.Weighted(gen.RandomTree(3000, opts.seed()), gen.UniformWeights(1000), opts.seed())
	opt, _, err := exact.ForestMWIS(g)
	if err != nil {
		return nil, err
	}
	epsSweep := []float64{2, 1, 0.5, 0.25, 0.1}
	if opts.Quick {
		epsSweep = []float64{1, 0.25}
	}
	for _, eps := range epsSweep {
		var sumW, best int64
		var sumRounds, sumCut, exactClusters int
		for trial := 0; trial < trials; trial++ {
			res, err := localapprox.Approximate(g, localapprox.Options{Epsilon: eps, Seed: opts.seed() + uint64(trial)})
			if err != nil {
				return nil, err
			}
			sumW += res.Weight
			if res.Weight > best {
				best = res.Weight
			}
			sumRounds += res.Rounds
			sumCut += res.CutNodes
			exactClusters = res.ExactClusters
		}
		t.Rows = append(t.Rows, []string{
			"tree", fi(g.N()), fi(g.MaxDegree()), ff(eps), f64(opt),
			ff(float64(sumW) / float64(trials)), f64(best),
			ff4(float64(opt) / float64(best)),
			ff(float64(sumRounds) / float64(trials)),
			ff(float64(sumCut) / float64(trials)), fi(exactClusters),
		})
	}
	// One CONGEST comparison row: Theorem 2 on the same instance has a far
	// weaker guarantee ((1+ε)Δ) but needs no Δ-dependent radius.
	fast, err := maxis.Theorem2(g, 0.5, maxis.Config{Seed: opts.seed()})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"tree (thm2, CONGEST)", fi(g.N()), fi(g.MaxDegree()), "0.50", f64(opt),
		f64(fast.Weight), f64(fast.Weight), ff4(float64(opt) / float64(fast.Weight)),
		fi(fast.Metrics.Rounds), "-", "-",
	})
	t.Notes = append(t.Notes,
		"Forest clusters are solved exactly by the tree DP, so the (1+ε) expectation guarantee is exercised rigorously at n=3000. The LOCAL ratio approaches 1 as ε shrinks while rounds grow — the trade-off [29] navigates with poly(log n/ε) machinery.",
	)
	return t, nil
}
