package experiments

import (
	"distmwis/internal/congest"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/mis"
)

// runE17 tabulates the full communication profile of every algorithm on a
// reference workload: rounds, messages, total bits, and the largest single
// message against the CONGEST budget B. The paper states its results in
// rounds; this table certifies that every implementation also respects the
// bandwidth regime those statements assume (all messages ≤ B) and shows
// the message/bit prices of the different pipelines.
func runE17(opts Options) (*Table, error) {
	g := gen.Weighted(gen.GNP(512, 0.05, opts.seed()), gen.PolyWeights(2), opts.seed())
	unw := gen.GNP(512, 0.05, opts.seed())
	t := &Table{
		ID:    "E17",
		Title: "Communication profile on G(512, 0.05), W = n²",
		Claim: "all protocols are CONGEST-compliant: every message ≤ B = 8·log₂ n bits",
		Columns: []string{
			"algorithm", "rounds", "messages", "total bits", "max msg bits", "B", "compliant",
		},
	}
	cfg := maxis.Config{Seed: opts.seed()}
	bandwidth := 8 * 9 // 8·⌈log₂ 512⌉
	add := func(name string, m struct {
		Rounds         int
		Messages, Bits int64
		MaxMessageBits int
	}) {
		t.Rows = append(t.Rows, []string{
			name, fi(m.Rounds), f64(m.Messages), f64(m.Bits), fi(m.MaxMessageBits),
			fi(bandwidth), fbool(m.MaxMessageBits <= bandwidth),
		})
	}
	type metrics = struct {
		Rounds         int
		Messages, Bits int64
		MaxMessageBits int
	}

	if res, err := maxis.GoodNodes(g, cfg); err != nil {
		return nil, err
	} else {
		add("goodnodes (Thm 8)", metrics{res.Metrics.Rounds, res.Metrics.Messages, res.Metrics.Bits, res.Metrics.MaxMessageBits})
	}
	if res, err := maxis.Sparsified(g, cfg); err != nil {
		return nil, err
	} else {
		add("sparsified (Thm 9)", metrics{res.Metrics.Rounds, res.Metrics.Messages, res.Metrics.Bits, res.Metrics.MaxMessageBits})
	}
	if res, err := maxis.Theorem1(g, 0.5, cfg); err != nil {
		return nil, err
	} else {
		add("theorem 1 (ε=0.5)", metrics{res.Metrics.Rounds, res.Metrics.Messages, res.Metrics.Bits, res.Metrics.MaxMessageBits})
	}
	if res, err := maxis.Theorem2(g, 0.5, cfg); err != nil {
		return nil, err
	} else {
		add("theorem 2 (ε=0.5)", metrics{res.Metrics.Rounds, res.Metrics.Messages, res.Metrics.Bits, res.Metrics.MaxMessageBits})
	}
	if res, err := maxis.BarYehuda(g, cfg); err != nil {
		return nil, err
	} else {
		add("baseline [8]", metrics{res.Metrics.Rounds, res.Metrics.Messages, res.Metrics.Bits, res.Metrics.MaxMessageBits})
	}
	if res, err := maxis.Ranking(unw, 2, cfg); err != nil {
		return nil, err
	} else {
		add("ranking (§5)", metrics{res.Metrics.Rounds, res.Metrics.Messages, res.Metrics.Bits, res.Metrics.MaxMessageBits})
	}
	if res, err := maxis.Theorem5(unw, 0.5, cfg); err != nil {
		return nil, err
	} else {
		add("theorem 5 (ε=0.5)", metrics{res.Metrics.Rounds, res.Metrics.Messages, res.Metrics.Bits, res.Metrics.MaxMessageBits})
	}
	for _, alg := range []mis.Algorithm{mis.Luby{}, mis.Ghaffari{}, mis.Rank{}} {
		res, err := mis.Compute(alg, unw, congest.WithSeed(opts.seed()))
		if err != nil {
			return nil, err
		}
		add("mis/"+alg.Name(), metrics{res.Exec.Rounds, res.Exec.Messages, res.Exec.Bits, res.Exec.MaxMessageBits})
	}
	t.Notes = append(t.Notes,
		"B = 8·⌈log₂ n⌉ bits is enforced by the simulator on every message; a violation aborts the run, so the 'compliant' column is doubly certified.",
	)
	return t, nil
}
