package experiments

import (
	"distmwis/internal/coloring"
	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/stats"
)

// runE14 reproduces the Section 8 / Open Question 2 observation: a
// (Δ+1)-colouring yields a (Δ+1)-approximation by taking the heaviest
// colour class, but selecting that class distributedly costs Θ(D) rounds —
// while the paper's Theorem 2 pipeline is diameter-independent.
func runE14(opts Options) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Colour-class MaxIS approximation and the Ω(D) barrier (Section 8, Open Question 2)",
		Claim: "max-weight colour class is a (Δ+1)-approx, but finding it requires Ω(D) rounds; Theorem 2 does not",
		Columns: []string{
			"graph", "n", "Δ", "diameter proxy (tree depth)", "class weight",
			"w(V)/(Δ+1)", "≥ bound", "colour+select rounds", "thm2 rounds",
		},
	}
	type workload struct {
		name string
		g    *graph.Graph
	}
	workloads := []workload{
		{name: "path", g: gen.Weighted(gen.Path(600), gen.UniformWeights(100), opts.seed())},
		{name: "grid", g: gen.Weighted(gen.Grid(24, 24), gen.UniformWeights(100), opts.seed()+1)},
		{name: "torus", g: gen.Weighted(gen.Torus(24, 24), gen.UniformWeights(100), opts.seed()+2)},
		{name: "hypercube", g: gen.Weighted(gen.Hypercube(9), gen.UniformWeights(100), opts.seed()+3)},
	}
	if opts.Quick {
		workloads = workloads[:2]
	}
	for _, wl := range workloads {
		g := wl.g
		set, rounds, depth, err := coloring.ColorClassApprox(g, opts.seed())
		if err != nil {
			return nil, err
		}
		classW := g.SetWeight(set)
		bound := float64(g.TotalWeight()) / float64(g.MaxDegree()+1)
		fast, err := maxis.Theorem2(g, 1, maxis.Config{Seed: opts.seed()})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			wl.name, fi(g.N()), fi(g.MaxDegree()), fi(depth),
			f64(classW), ff(bound), fbool(float64(classW) >= bound-1e-9),
			fi(rounds), fi(fast.Metrics.Rounds),
		})
	}
	t.Notes = append(t.Notes,
		"The colour-class pipeline (randomized (Δ+1)-colouring, BFS-tree flooding, pipelined convergecast of k class weights, winner broadcast) pays ≈ 2D+k rounds on the path while Theorem 2's rounds are flat — the distributed gap that Open Question 2 formalizes.",
	)
	return t, nil
}

// runE15 exercises the log* machinery of Section 7: Cole–Vishkin
// deterministically 3-colours an oriented ring in O(log* n) rounds and
// yields an MIS of the cycle in O(log* n) — the upper bound matching
// Linial's and Naor's Ω(log* n) lower bounds (Theorem 7) that the paper's
// reduction relies on.
func runE15(opts Options) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "log* machinery on the cycle: Cole–Vishkin and ring MIS (Section 7 upper-bound side)",
		Claim: "3-colouring and MIS of the oriented ring in O(log* n) rounds; Naor's bound says ≥ ½log*n − 4 rounds",
		Columns: []string{
			"n", "log* n", "CV rounds", "colours", "ring-MIS rounds (total)",
			"Naor lower bound ½log*n−4", "MIS valid",
		},
	}
	sizes := []int{8, 64, 1024, 1 << 14, 1 << 17}
	if opts.Quick {
		sizes = []int{8, 1024}
	}
	for _, n := range sizes {
		g := gen.Cycle(n)
		ports := coloring.CanonicalRingSuccessorPorts(n)
		set, totalRounds, col, err := coloring.RingMIS(g, ports, congest.WithSeed(opts.seed()))
		if err != nil {
			return nil, err
		}
		valid := g.IsMaximalIS(set)
		ls := stats.LogStar(float64(n))
		naor := float64(ls)/2 - 4
		t.Rows = append(t.Rows, []string{
			fi(n), fi(ls), fi(col.Exec.Rounds), fi(col.NumColors),
			fi(totalRounds), ff(naor), fbool(valid),
		})
	}
	t.Notes = append(t.Notes,
		"Rounds grow by ≤ a couple over a 16000x increase in n — the log* shape. The deterministic MIS-on-a-ring cost is what the Section 7 reduction converts approximate-MaxIS algorithms into, and what Naor's lower bound prices from below.",
	)
	return t, nil
}
