// Package experiments regenerates the reproduction tables E1–E13 listed in
// DESIGN.md.
//
// The paper is theory-only — it has no measured tables or figures — so the
// experiment suite validates each theorem empirically: approximation
// guarantees against exact optima or certified bounds, round-complexity
// scaling in n, Δ, W and ε, concentration behaviour against the paper's
// Facts 1–3, and the Section 7 lower-bound mechanics. EXPERIMENTS.md is
// generated from these tables.
package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier (E1..E13).
	ID string
	// Title is a short human-readable name.
	Title string
	// Claim is the paper statement being reproduced.
	Claim string
	// Columns are the column headers.
	Columns []string
	// Rows holds the data, already formatted.
	Rows [][]string
	// Notes are free-form observations appended under the table.
	Notes []string
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "**Claim (paper):** %s\n\n", t.Claim)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// CSV renders the table as RFC 4180 comma-separated values: cells
// containing a comma, quote or newline are quoted, with embedded quotes
// doubled, so column headers like "rounds, measured" survive a round-trip
// through any standard CSV reader.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// csvEscape quotes a cell per RFC 4180 when it contains a separator,
// quote or line break; plain cells pass through unchanged.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\r\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Options configures a run of the suite.
type Options struct {
	// Seed is the root seed (default 1).
	Seed uint64
	// Quick shrinks sweeps and trial counts for CI-speed runs.
	Quick bool
	// Trials overrides the per-point trial count (0 = experiment default).
	Trials int
	// FaultRate, when positive, replaces the E18 loss-rate sweep with this
	// single message-loss probability (duplication and corruption scale
	// with it, as in the default sweep).
	FaultRate float64
	// FaultSeed overrides the adversary seed used by E18 (0 = derive from
	// Seed).
	FaultSeed uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) trials(full, quick int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick {
		return quick
	}
	return full
}

// Runner produces one experiment table.
type Runner func(Options) (*Table, error)

// entry pairs an experiment title with its runner; the registry literal
// lives in registry.go.
type entry struct {
	title string
	run   Runner
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := strconv.Atoi(strings.TrimPrefix(out[i], "E"))
		b, _ := strconv.Atoi(strings.TrimPrefix(out[j], "E"))
		return a < b
	})
	return out
}

// Title returns an experiment's title ("" if unknown).
func Title(id string) string { return registry[id].title }

// Run executes one experiment by ID.
func Run(id string, opts Options) (*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	t, err := e.run(opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	return t, nil
}

// RunAll executes every experiment in ID order.
func RunAll(opts Options) ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		t, err := Run(id, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// formatting helpers shared by the experiment files.

func fi(v int) string      { return strconv.Itoa(v) }
func f64(v int64) string   { return strconv.FormatInt(v, 10) }
func ff(v float64) string  { return strconv.FormatFloat(v, 'f', 2, 64) }
func ff4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
func fe(v float64) string  { return strconv.FormatFloat(v, 'e', 2, 64) }
func fbool(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
