package experiments

import (
	"distmwis/internal/fault"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
)

// runE18 exercises the fault-injection layer end to end: every hardened
// MaxIS pipeline is run under a sweep of message-loss rates crossed with
// crash fractions, and each output is validated with fault.SafetyReport
// against the fault-free run on the same seed. The safety claim is
// unconditional — independence must hold for every schedule — while the
// weight-retention column records how gracefully each algorithm degrades.
//
// The adversary schedule couples duplication and corruption to the loss
// rate (half each), crashes CrashFrac·n nodes at round 3 of every phase
// (crash indices are phase-local: each induced-subgraph phase draws its
// own victims), and caps blocked phases with the fault.HardStop budget so
// runs always terminate.
func runE18(opts Options) (*Table, error) {
	trials := opts.trials(3, 2)
	n := 512
	if opts.Quick {
		n = 192
	}
	g := gen.Weighted(gen.GNP(n, 8/float64(n), opts.seed()), gen.PolyWeights(2), opts.seed())
	losses := []float64{0, 0.02, 0.1, 0.3}
	crashFracs := []float64{0, 0.1}
	if opts.Quick {
		losses = []float64{0, 0.1}
	}
	if opts.FaultRate > 0 {
		losses = []float64{opts.FaultRate}
	}
	faultSeed := opts.FaultSeed
	if faultSeed == 0 {
		faultSeed = opts.seed() + 77
	}

	// Algorithms are addressed by registry name through maxis.Solve — the
	// same dispatch path as the CLI and the server; only the display label
	// is local.
	algs := []struct {
		name string
		alg  string
		eps  float64
	}{
		{"goodnodes", "goodnodes", 0},
		{"theorem1(eps=1)", "theorem1", 1},
		{"bar-yehuda", "baseline", 0},
	}

	t := &Table{
		ID:    "E18",
		Title: "Graceful degradation under fault injection",
		Claim: "independence holds under every adversary schedule; only weight and rounds degrade",
		Columns: []string{
			"algorithm", "loss", "crash frac", "independent",
			"retention (mean)", "truncated phases", "lost", "corrupted", "duplicated",
		},
	}

	for _, alg := range algs {
		baseline := make([]int64, trials)
		for trial := 0; trial < trials; trial++ {
			res, err := maxis.Solve(alg.alg, g, alg.eps, 0, maxis.Config{Seed: opts.seed() + uint64(trial)})
			if err != nil {
				return nil, err
			}
			baseline[trial] = res.Weight
		}
		for _, loss := range losses {
			for _, cf := range crashFracs {
				var stats fault.Stats
				allIndependent := true
				sumRetention := 0.0
				truncations := 0
				for trial := 0; trial < trials; trial++ {
					cfg := maxis.Config{
						Seed:       opts.seed() + uint64(trial),
						FaultStats: &stats,
						Faults: fault.Schedule{
							Seed:      faultSeed + uint64(trial),
							Loss:      loss,
							Dup:       loss / 2,
							Corrupt:   loss / 2,
							CrashFrac: cf,
							CrashAt:   3,
						},
					}
					res, err := maxis.Solve(alg.alg, g, alg.eps, 0, cfg)
					if err != nil {
						return nil, err
					}
					rep := fault.Compare(g, res.Set, baseline[trial], res.Metrics.Truncations > 0)
					if err := rep.Err(); err != nil {
						return nil, err
					}
					if !rep.Independent {
						allIndependent = false
					}
					sumRetention += rep.Retention
					truncations += res.Metrics.Truncations
				}
				t.Rows = append(t.Rows, []string{
					alg.name, ff(loss), ff(cf), fbool(allIndependent),
					ff(sumRetention / float64(trials)), fi(truncations),
					f64(stats.Lost), f64(stats.Corrupted), f64(stats.Duplicated),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"Adversary: per-edge loss p, duplication p/2, corruption p/2 (CRC-8 makes every corruption a detectable loss), crash-stop of the given node fraction at round 3 of each phase.",
		"Retention is w(I_faulty)/w(I_fault-free) on the same seed; the loss=0, crash=0 rows are the control (retention 1).",
		"Independence is re-validated host-side for every run via fault.SafetyReport; a violation fails the experiment.",
		"Retention slightly above 1 is expected for the local-ratio pipelines: faults perturb which maximal sets the MIS phases find, which can land on a heavier stack than the fault-free run.",
	)
	return t, nil
}
