package experiments

import (
	"fmt"

	"distmwis/internal/exact"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
)

// namedGraph pairs a workload with its label for table rows.
type namedGraph struct {
	name string
	g    *graph.Graph
}

// runE1 validates Theorem 8: the good-nodes algorithm returns weight at
// least w(V)/(4(Δ+1)) in O(MIS(n,Δ)) rounds, on every workload family.
func runE1(opts Options) (*Table, error) {
	trials := opts.trials(5, 2)
	sizes := []int{256, 1024, 4096}
	if opts.Quick {
		sizes = []int{256, 1024}
	}
	t := &Table{
		ID:    "E1",
		Title: "Good-nodes O(Δ)-approximation (Theorem 8)",
		Claim: "w(I) ≥ w(V)/(4(Δ+1)) in O(MIS(n,Δ)) rounds",
		Columns: []string{
			"graph", "n", "Δ", "w(V)", "bound w(V)/4(Δ+1)",
			"min w(I)", "mean w(I)", "rounds (mean)", "guarantee held",
		},
	}
	for _, n := range sizes {
		for _, wl := range []namedGraph{
			{name: "gnp", g: gen.Weighted(gen.GNP(n, 8/float64(n), opts.seed()), gen.PolyWeights(2), opts.seed())},
			{name: "powerlaw", g: gen.Weighted(gen.ChungLu(minInt(n, 2048), 2.5, 64, opts.seed()+uint64(n)), gen.UniformWeights(1<<16), opts.seed())},
			{name: "torus", g: gen.Weighted(gen.Torus(intSqrt(n), intSqrt(n)), gen.ExponentialSpreadWeights(20), opts.seed())},
		} {
			g := wl.g
			bound := float64(g.TotalWeight()) / (4 * float64(g.MaxDegree()+1))
			var minW int64 = 1<<62 - 1
			var sumW, sumRounds int64
			held := true
			for trial := 0; trial < trials; trial++ {
				res, err := maxis.GoodNodes(g, maxis.Config{Seed: opts.seed() + uint64(trial)})
				if err != nil {
					return nil, err
				}
				if res.Weight < minW {
					minW = res.Weight
				}
				sumW += res.Weight
				sumRounds += int64(res.Metrics.Rounds)
				if float64(res.Weight) < bound {
					held = false
				}
			}
			t.Rows = append(t.Rows, []string{
				wl.name, fi(g.N()), fi(g.MaxDegree()), f64(g.TotalWeight()), ff(bound),
				f64(minW), ff(float64(sumW) / float64(trials)),
				ff(float64(sumRounds) / float64(trials)), fbool(held),
			})
		}
	}
	return t, nil
}

// runE3 validates Theorem 1: (1+ε)Δ-approximation against exact optima,
// with rounds scaling as O(MIS/ε).
func runE3(opts Options) (*Table, error) {
	epsSweep := []float64{2, 1, 0.5, 0.25, 0.125}
	if opts.Quick {
		epsSweep = []float64{1, 0.25}
	}
	graphs := []namedGraph{
		{name: "gnp40", g: gen.Weighted(gen.GNP(40, 0.15, opts.seed()), gen.UniformWeights(1000), opts.seed())},
		{name: "clique20", g: gen.Weighted(gen.Clique(20), gen.UniformWeights(100), opts.seed()+1)},
		{name: "cycle50", g: gen.Weighted(gen.Cycle(50), gen.UniformWeights(1<<12), opts.seed()+2)},
		{name: "bipartite", g: gen.Weighted(gen.CompleteBipartite(12, 14), gen.UniformWeights(500), opts.seed()+3)},
	}
	t := &Table{
		ID:    "E3",
		Title: "(1+ε)Δ-approximation via boosting (Theorem 1)",
		Claim: "ratio OPT/w(I) ≤ (1+ε)Δ; rounds = O(MIS(n,Δ)/ε)",
		Columns: []string{
			"graph", "Δ", "ε", "OPT", "w(I)", "ratio", "guarantee (1+ε)Δ",
			"held", "phases", "rounds",
		},
	}
	for _, wl := range graphs {
		var opt int64
		var err error
		if wl.name == "cycle50" {
			opt, err = exact.CycleMWIS(wl.g)
		} else {
			opt, _, err = exact.MWIS(wl.g)
		}
		if err != nil {
			return nil, fmt.Errorf("exact OPT for %s: %w", wl.name, err)
		}
		for _, eps := range epsSweep {
			res, err := maxis.Theorem1(wl.g, eps, maxis.Config{Seed: opts.seed()})
			if err != nil {
				return nil, err
			}
			ratio := float64(opt) / float64(res.Weight)
			guar := maxis.GuaranteeDelta(wl.g.MaxDegree(), eps)
			t.Rows = append(t.Rows, []string{
				wl.name, fi(wl.g.MaxDegree()), ff(eps), f64(opt), f64(res.Weight),
				ff(ratio), ff(guar), fbool(ratio <= guar+1e-9),
				fi(res.Phases), fi(res.Metrics.Rounds),
			})
		}
	}
	return t, nil
}

// runE6 validates Theorem 10 / Proposition 2: the boosting stack property
// w(I) ≥ Σᵢ wᵢ(Iᵢ) and the Corollary 1 bound w(I) ≥ w(V)/((1+ε)(Δ+1)).
func runE6(opts Options) (*Table, error) {
	eps := 0.5
	trials := opts.trials(5, 2)
	graphs := []namedGraph{
		{name: "gnp", g: gen.Weighted(gen.GNP(400, 0.03, opts.seed()), gen.PolyWeights(2), opts.seed())},
		{name: "clique", g: gen.Weighted(gen.Clique(64), gen.UniformWeights(1000), opts.seed()+1)},
		{name: "tree", g: gen.Weighted(gen.RandomTree(500, opts.seed()+2), gen.UniformWeights(256), opts.seed()+2)},
		{name: "expspread", g: gen.Weighted(gen.GNP(300, 0.05, opts.seed()+3), gen.ExponentialSpreadWeights(24), opts.seed()+3)},
	}
	t := &Table{
		ID:    "E6",
		Title: "Local-ratio boosting and the stack property (Thm 10, Prop 2, Cor 1)",
		Claim: "w(I) ≥ Σᵢ wᵢ(Iᵢ) always; w(I) ≥ w(V)/((1+ε)(Δ+1))",
		Columns: []string{
			"graph", "Δ", "w(V)", "mean w(I)", "mean stack Σwᵢ(Iᵢ)",
			"stack ≤ w(I)", "Cor1 bound", "Cor1 held", "phases",
		},
	}
	for _, wl := range graphs {
		g := wl.g
		var sumW, sumStack float64
		stackOK, corOK := true, true
		phases := 0
		cor1 := maxis.GuaranteeCorollary1(g.TotalWeight(), g.MaxDegree(), eps)
		for trial := 0; trial < trials; trial++ {
			res, err := maxis.Theorem1(g, eps, maxis.Config{Seed: opts.seed() + uint64(trial)})
			if err != nil {
				return nil, err
			}
			sumW += float64(res.Weight)
			sumStack += float64(res.StackValue)
			if res.Weight < res.StackValue {
				stackOK = false
			}
			if float64(res.Weight) < cor1-1e-9 {
				corOK = false
			}
			phases = res.Phases
		}
		t.Rows = append(t.Rows, []string{
			wl.name, fi(g.MaxDegree()), f64(g.TotalWeight()),
			ff(sumW / float64(trials)), ff(sumStack / float64(trials)),
			fbool(stackOK), ff(cor1), fbool(corOK), fi(phases),
		})
	}
	t.Notes = append(t.Notes,
		"The stack property is additionally asserted at runtime inside every Boost run; a violation aborts the algorithm.")
	return t, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// intSqrt returns ⌊√n⌋.
func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
