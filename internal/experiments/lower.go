package experiments

import (
	"distmwis/internal/graph/gen"
	"distmwis/internal/lowerbound"
	"distmwis/internal/stats"
)

// runE12 exercises the Section 7 reduction: RandMIS turns an approximate
// MaxIS algorithm on the cycle-of-cliques C₁ into an MIS of the cycle C,
// with gaps bounded by the algorithm's round count — and shows the contrast
// with a truncated algorithm on the plain cycle (the failure mode that
// forces the clique blow-up in the proof).
func runE12(opts Options) (*Table, error) {
	trials := opts.trials(10, 3)
	t := &Table{
		ID:    "E12",
		Title: "Lower-bound machinery: the RandMIS reduction (Section 7, Lemma 8)",
		Claim: "A(C₁) + gap filling yields an MIS of C in O(T(n₀n₁)) rounds; gaps on C₁ stay O(T), unlike truncated runs on the plain cycle",
		Columns: []string{
			"instance", "n₀", "n₁", "mean |I₁|", "max gap (worst)", "fill rounds (worst)",
			"A rounds", "all MIS valid", "log*(n₀n₁)",
		},
	}
	type point struct {
		name   string
		n0, n1 int
	}
	points := []point{
		{name: "coc-64x16", n0: 64, n1: 16},
		{name: "coc-128x32", n0: 128, n1: 32},
		{name: "coc-256x16", n0: 256, n1: 16},
	}
	if opts.Quick {
		points = points[:2]
	}
	for _, pt := range points {
		var sumI1 float64
		worstGap, worstFill, rounds := 0, 0, 0
		valid := true
		for trial := 0; trial < trials; trial++ {
			res, err := lowerbound.RandMIS(pt.n0, pt.n1, lowerbound.RankingAlgorithm(2), opts.seed()+uint64(trial))
			if err != nil {
				return nil, err
			}
			sumI1 += float64(res.I1Size)
			if res.MaxGap > worstGap {
				worstGap = res.MaxGap
			}
			if res.FillRounds > worstFill {
				worstFill = res.FillRounds
			}
			rounds = res.SimRounds
			c := gen.Cycle(pt.n0)
			if !c.IsMaximalIS(res.MIS) {
				valid = false
			}
		}
		t.Rows = append(t.Rows, []string{
			pt.name, fi(pt.n0), fi(pt.n1), ff(sumI1 / float64(trials)),
			fi(worstGap), fi(worstFill), fi(rounds), fbool(valid),
			fi(stats.LogStar(float64(pt.n0 * pt.n1))),
		})
	}

	// Contrast rows: truncated Luby on the plain cycle leaves gaps well
	// beyond its round budget.
	for _, tr := range []int{3, 6, 9} {
		const n = 8192
		worstGap := 0
		for trial := 0; trial < trials; trial++ {
			set, _, err := lowerbound.TruncatedLuby(tr)(gen.Cycle(n), opts.seed()+uint64(trial))
			if err != nil {
				return nil, err
			}
			if gap := lowerbound.MaxGapOnCycle(set); gap > worstGap {
				worstGap = gap
			}
		}
		t.Rows = append(t.Rows, []string{
			"plain-cycle truncated Luby", fi(n), "-", "-",
			fi(worstGap), "-", fi(tr), "-", fi(stats.LogStar(n)),
		})
	}
	t.Notes = append(t.Notes,
		"On C₁ the worst gap stays a small constant: the n₁-clique blow-up amplifies the per-region success probability exactly as Propositions 8–9 argue.",
		"On the plain cycle, cutting a w.h.p. algorithm off after T rounds leaves gaps ≫ T somewhere along the cycle — the failure that makes the plain cycle unusable for the randomized reduction and motivates the cycle-of-cliques.",
	)
	return t, nil
}
