package experiments

import (
	"fmt"
	"sort"

	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/trace"
)

// runE19 produces round-resolved communication profiles: three MaxIS
// pipelines run on the same graph under a ring tracer, and the table
// breaks each pipeline's cost down by phase label — where the rounds and
// the bits actually go. E17 certifies aggregate CONGEST compliance; this
// experiment shows the shape of the spend (e.g. the baseline's bits are
// spread over log W "scale" phases while Theorem 2 concentrates its
// traffic in a handful of sparsified pushes).
func runE19(opts Options) (*Table, error) {
	n := 512
	if opts.Quick {
		n = 160
	}
	g := gen.Weighted(gen.GNP(n, 0.05, opts.seed()), gen.PolyWeights(2), opts.seed())
	t := &Table{
		ID:    "E19",
		Title: fmt.Sprintf("Round-resolved bit profile on G(%d, 0.05), W = n²", n),
		Claim: "per-phase traces reconcile exactly with aggregate metrics; the baseline's bits spread over log W scales",
		Columns: []string{
			"algorithm", "phase", "rounds", "messages", "bits", "bits/round", "share %",
		},
	}
	// Pipelines are addressed by registry name through maxis.Solve, so this
	// experiment exercises exactly the dispatch path the CLI and the server
	// use; only the display label is local.
	pipelines := []struct {
		name string
		alg  string
		eps  float64
	}{
		{"goodnodes", "goodnodes", 0},
		{"theorem2 (ε=1)", "theorem2", 1},
		{"baseline [8]", "baseline", 0},
	}
	for _, p := range pipelines {
		ring := trace.NewRing(0)
		res, err := maxis.Solve(p.alg, g, p.eps, 0, maxis.Config{Seed: opts.seed(), Tracer: ring})
		if err != nil {
			return nil, fmt.Errorf("experiments: E19 %s: %w", p.name, err)
		}
		rounds := ring.Rounds()
		tl := trace.Summarize(rounds)
		// The trace must reconcile exactly with the pipeline's own
		// accounting — this is the acceptance check of the tracing layer,
		// re-verified on every run of the experiment.
		if tl.Bits != res.Metrics.Bits || tl.Messages != res.Metrics.Messages {
			return nil, fmt.Errorf("experiments: E19 %s: trace totals (%d bits, %d msgs) disagree with metrics (%d bits, %d msgs)",
				p.name, tl.Bits, tl.Messages, res.Metrics.Bits, res.Metrics.Messages)
		}
		// Group by phase label (dropping the per-protocol mark/join/retire
		// sub-phase) so repeated pushes/scales aggregate into one row.
		byLabel := map[string]*trace.PhaseTotal{}
		var order []string
		for _, rec := range rounds {
			pt := byLabel[rec.Label]
			if pt == nil {
				pt = &trace.PhaseTotal{Label: rec.Label}
				byLabel[rec.Label] = pt
				order = append(order, rec.Label)
			}
			pt.Rounds++
			pt.Messages += rec.Messages
			pt.Bits += rec.Bits
		}
		sort.SliceStable(order, func(i, j int) bool { return byLabel[order[i]].Bits > byLabel[order[j]].Bits })
		for _, label := range order {
			pt := byLabel[label]
			perRound := float64(pt.Bits)
			if pt.Rounds > 0 {
				perRound /= float64(pt.Rounds)
			}
			share := 0.0
			if tl.Bits > 0 {
				share = 100 * float64(pt.Bits) / float64(tl.Bits)
			}
			name := label
			if name == "" {
				name = "(unlabeled)"
			}
			t.Rows = append(t.Rows, []string{
				p.name, name, fi(pt.Rounds), f64(pt.Messages), f64(pt.Bits), ff(perRound), ff(share),
			})
		}
		t.Rows = append(t.Rows, []string{
			p.name, "total", fi(tl.Rounds), f64(tl.Messages), f64(tl.Bits), ff(avgBits(tl)), ff(100),
		})
		if dropped := ring.Dropped(); dropped > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: ring evicted %d early rounds; per-phase rows cover the retained suffix only.", p.name, dropped))
		}
	}
	t.Notes = append(t.Notes,
		"Phase rows are sorted by total bits within each pipeline; 'total' sums the traced rounds.",
		"Traced rounds exclude host-side bookkeeping rounds (set pushes, liveness exchanges) that Metrics.Rounds charges via AddRounds, so totals here can be below the E4/E17 round counts; bits and messages reconcile exactly.",
	)
	return t, nil
}

func avgBits(tl *trace.Timeline) float64 {
	if tl.Rounds == 0 {
		return 0
	}
	return float64(tl.Bits) / float64(tl.Rounds)
}
