package experiments

import (
	"fmt"

	"distmwis/internal/exact"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
)

// runE21 races the ported local-ratio family (arXiv:1708.00276,
// arXiv:1803.00786) head-to-head against the paper's own algorithms on
// shared seeds: for each solver, CONGEST rounds spent versus weight
// retained (w(I)/OPT). This is the evidence behind the planner's cost
// model — the few-round tiers buy orders of magnitude in rounds for a
// bounded retention loss, and localratio matches the baseline's quality in
// Δ+1 phases instead of log W scales.
func runE21(opts Options) (*Table, error) {
	trials := opts.trials(5, 2)
	algs := []struct {
		name   string
		family string
	}{
		{"baseline", "paper [8]"},
		{"theorem2", "paper"},
		{"goodnodes", "paper"},
		{"oneround", "paper"},
		{"localratio", "local-ratio"},
		{"localratio-eps", "local-ratio"},
		{"bhr-oneround", "local-ratio"},
		{"bhr-fewround", "local-ratio"},
	}
	type workload struct {
		name string
		g    *graph.Graph
		opt  int64
	}
	gnp := gen.Weighted(gen.GNP(90, 0.06, opts.seed()), gen.PolyWeights(2), opts.seed())
	optGNP, _, err := exact.MWIS(gnp)
	if err != nil {
		return nil, fmt.Errorf("exact OPT (gnp): %w", err)
	}
	tree := gen.Weighted(gen.RandomTree(2000, opts.seed()+1), gen.UniformWeights(1000), opts.seed()+1)
	optTree, _, err := exact.ForestMWIS(tree)
	if err != nil {
		return nil, fmt.Errorf("exact OPT (tree): %w", err)
	}
	workloads := []workload{{"gnp90", gnp, optGNP}, {"tree2000", tree, optTree}}
	if opts.Quick {
		workloads = workloads[:1]
	}

	t := &Table{
		ID:    "E21",
		Title: "Algorithm portfolio head-to-head: rounds vs retention",
		Claim: "the local-ratio family spans the rounds/quality trade-off the planner navigates: one-round races retain ≥1/(Δ+1) in expectation, few-round races close most of the gap, localratio matches baseline quality in Δ+1 phases",
		Columns: []string{
			"graph", "family", "alg", "mean rounds", "mean w(I)",
			"retention w(I)/OPT", "worst retention", "rounds vs baseline",
		},
	}
	for _, wl := range workloads {
		var baseRounds float64
		for _, a := range algs {
			var sumW, sumRounds float64
			worst := 1.0
			for trial := 0; trial < trials; trial++ {
				res, err := maxis.Solve(a.name, wl.g, 0.5, 0, maxis.Config{Seed: opts.seed() + uint64(trial)})
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", a.name, wl.name, err)
				}
				sumW += float64(res.Weight)
				sumRounds += float64(res.Metrics.Rounds)
				if r := float64(res.Weight) / float64(wl.opt); r < worst {
					worst = r
				}
			}
			meanRounds := sumRounds / float64(trials)
			if a.name == "baseline" {
				baseRounds = meanRounds
			}
			speedup := "1.00x"
			if baseRounds > 0 {
				speedup = fmt.Sprintf("%.2fx", baseRounds/meanRounds)
			}
			t.Rows = append(t.Rows, []string{
				wl.name, a.family, a.name, ff(meanRounds),
				ff(sumW / float64(trials)),
				ff4(sumW / float64(trials) / float64(wl.opt)), ff4(worst),
				speedup,
			})
		}
	}
	t.Notes = append(t.Notes,
		"Shared seeds across every solver: row-to-row deltas are algorithmic, not sampling noise. Retention is against the exact optimum (branch-and-bound on gnp90, tree DP on tree2000). \"rounds vs baseline\" is the round-count speedup over the [8] baseline on the same workload — what a deadline budget buys when the planner steps down a tier.",
	)
	return t, nil
}
