package experiments

import (
	"fmt"
	"math/rand/v2"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/stats"
)

// runE8 validates Theorem 11: the ranking algorithm returns
// |I| ≥ n/(8(Δ+1)) with failure probability ≤ exp(−k/128) + 1/n^c,
// k = n/(2(Δ+1)) — the martingale concentration of Proposition 4.
func runE8(opts Options) (*Table, error) {
	trials := opts.trials(400, 60)
	t := &Table{
		ID:    "E8",
		Title: "Ranking algorithm concentration (Theorem 11, Proposition 4)",
		Claim: "|I| ≥ n/(8(Δ+1)) with failure prob ≤ exp(−n/(256(Δ+1))) + 1/n^c",
		Columns: []string{
			"graph", "n", "Δ", "bound n/8(Δ+1)", "mean |I|", "p10 |I|", "min |I|",
			"empirical fail rate", "theory fail bound",
		},
	}
	type workload struct {
		name string
		g    *graph.Graph
	}
	reg, err := gen.RandomRegular(2048, 8, opts.seed())
	if err != nil {
		return nil, err
	}
	workloads := []workload{
		{name: "cycle", g: gen.Cycle(2048)},
		{name: "8-regular", g: reg},
		{name: "gnp", g: gen.GNP(2048, 6.0/2048, opts.seed())},
	}
	if opts.Quick {
		workloads = workloads[:2]
	}
	for _, wl := range workloads {
		g := wl.g
		bound := float64(g.N()) / (8 * float64(g.MaxDegree()+1))
		sizes := make([]float64, 0, trials)
		fails := 0
		for trial := 0; trial < trials; trial++ {
			res, err := maxis.Ranking(g, 2, maxis.Config{Seed: opts.seed() + uint64(trial)})
			if err != nil {
				return nil, err
			}
			size := float64(graph.SetSize(res.Set))
			sizes = append(sizes, size)
			if size < bound {
				fails++
			}
		}
		s := stats.Summarize(sizes)
		t.Rows = append(t.Rows, []string{
			wl.name, fi(g.N()), fi(g.MaxDegree()), ff(bound),
			ff(s.Mean), ff(s.P10), ff(s.Min),
			ff4(float64(fails) / float64(trials)),
			fe(stats.Theorem11FailureBound(g.N(), g.MaxDegree())),
		})
	}
	t.Notes = append(t.Notes,
		"The martingale analysis (SeqBoppanna + Azuma) predicts exponentially small failure probability in n/(Δ+1); measured failure rates are zero at these sizes, consistent with the bound.",
	)
	return t, nil
}

// runE9 validates Proposition 3: SeqBoppanna and the distributed Boppanna
// ranking produce the same distribution over independent sets (TV ≤ 1/n^c).
func runE9(opts Options) (*Table, error) {
	trials := opts.trials(4000, 800)
	t := &Table{
		ID:    "E9",
		Title: "Sequential view of the ranking algorithm (Proposition 3)",
		Claim: "SeqBoppanna(G) ≡ Boppanna(G) in distribution up to 1/n^c total variation",
		Columns: []string{
			"graph", "n", "distinct sets (seq)", "distinct sets (dist)", "TV distance", "trials",
		},
	}
	graphs := []namedGraph{
		{name: "path3", g: gen.Path(3)},
		{name: "path4", g: gen.Path(4)},
		{name: "triangle+tail", g: triangleTail()},
		{name: "cycle5", g: gen.Cycle(5)},
		{name: "star4", g: gen.Star(4)},
	}
	if opts.Quick {
		graphs = graphs[:2]
	}
	for _, wl := range graphs {
		g := wl.g
		seqCount := map[string]int{}
		distCount := map[string]int{}
		rng := rand.New(rand.NewPCG(opts.seed(), 0xabcdef))
		for i := 0; i < trials; i++ {
			set, _ := maxis.SeqBoppanna(g, rng)
			seqCount[setKey(set)]++
			res, err := maxis.Ranking(g, 2, maxis.Config{Seed: opts.seed() + uint64(i)})
			if err != nil {
				return nil, err
			}
			distCount[setKey(res.Set)]++
		}
		keys := map[string]bool{}
		for k := range seqCount {
			keys[k] = true
		}
		for k := range distCount {
			keys[k] = true
		}
		var tv float64
		for k := range keys {
			p := float64(seqCount[k]) / float64(trials)
			q := float64(distCount[k]) / float64(trials)
			if p > q {
				tv += p - q
			} else {
				tv += q - p
			}
		}
		tv /= 2
		t.Rows = append(t.Rows, []string{
			wl.name, fi(g.N()), fi(len(seqCount)), fi(len(distCount)), ff4(tv), fi(trials),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("With %d trials the expected sampling noise in TV is of order 0.01–0.05 per instance; values at that scale confirm distributional equality.", trials),
	)
	return t, nil
}

// runE10 validates Theorem 5: unweighted graphs with Δ ≤ n/log n admit an
// O(1/ε)-round algorithm with |I| ≥ n/((1+ε)(Δ+1)).
func runE10(opts Options) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Constant-round algorithm for low-degree unweighted graphs (Theorem 5)",
		Claim: "|I| ≥ n/((1+ε)(Δ+1)) in O(1/ε) rounds for Δ ≤ n/log n",
		Columns: []string{
			"graph", "n", "Δ", "ε", "bound", "|I|", "held", "rounds", "budget O(1/ε)",
		},
	}
	type point struct {
		name string
		g    *graph.Graph
		eps  float64
	}
	var points []point
	sizes := []int{1024, 4096, 16384}
	if opts.Quick {
		sizes = []int{1024, 4096}
	}
	for _, n := range sizes {
		points = append(points, point{name: "cycle", g: gen.Cycle(n), eps: 0.5})
	}
	for _, eps := range []float64{2, 1, 0.5, 0.25} {
		points = append(points, point{name: "torus", g: gen.Torus(32, 32), eps: eps})
	}
	points = append(points, point{name: "gnp", g: gen.GNP(4096, 10.0/4096, opts.seed()), eps: 0.5})
	for _, pt := range points {
		res, err := maxis.Theorem5(pt.g, pt.eps, maxis.Config{Seed: opts.seed()})
		if err != nil {
			return nil, err
		}
		bound := float64(pt.g.N()) / ((1 + pt.eps) * float64(pt.g.MaxDegree()+1))
		size := graph.SetSize(res.Set)
		t.Rows = append(t.Rows, []string{
			pt.name, fi(pt.g.N()), fi(pt.g.MaxDegree()), ff(pt.eps),
			ff(bound), fi(size), fbool(float64(size) >= bound),
			fi(res.Metrics.Rounds), fi(maxis.BudgetTheorem5(pt.eps, 4)),
		})
	}
	t.Notes = append(t.Notes,
		"Rounds are flat as n grows 16x (cycle rows) and scale with 1/ε (torus rows) — the Theorem 5 shape.",
	)
	return t, nil
}

// runE11 reproduces the Section 1 motivation: the one-round algorithm [17]
// achieves w(V)/(Δ+1) in expectation but with enormous variance on
// adversarial instances, whereas the paper's w.h.p. algorithms are stable.
func runE11(opts Options) (*Table, error) {
	trials := opts.trials(300, 60)
	// Hub clique of 40 nodes carrying weight 10^6 each; 400 pendant
	// unit-weight nodes. A single clique winner takes w ≈ 10^6 or the
	// clique contributes ~0 when an unlucky pendant beats its hub — the
	// variance driver.
	g := gen.StarOfCliques(40, 400, 1_000_000)
	t := &Table{
		ID:    "E11",
		Title: "Expectation vs high-probability guarantees ([17] vs Theorem 2)",
		Claim: "[17]'s w(V)/(Δ+1) holds only in expectation; its variance can be huge",
		Columns: []string{
			"algorithm", "mean w(I)", "stddev", "min", "p10", "max",
			"E-bound w(V)/(Δ+1)", "freq below E-bound",
		},
	}
	bound := float64(g.TotalWeight()) / float64(g.MaxDegree()+1)
	collect := func(run func(seed uint64) (int64, error)) ([]float64, error) {
		xs := make([]float64, 0, trials)
		for i := 0; i < trials; i++ {
			w, err := run(opts.seed() + uint64(i))
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(w))
		}
		return xs, nil
	}
	oneRound, err := collect(func(seed uint64) (int64, error) {
		res, err := maxis.OneRound(g, maxis.Config{Seed: seed})
		if err != nil {
			return 0, err
		}
		return res.Weight, nil
	})
	if err != nil {
		return nil, err
	}
	thm2, err := collect(func(seed uint64) (int64, error) {
		res, err := maxis.Theorem2(g, 1, maxis.Config{Seed: seed})
		if err != nil {
			return 0, err
		}
		return res.Weight, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name string
		xs   []float64
	}{
		{name: "one-round [17]", xs: oneRound},
		{name: "Theorem 2 (ε=1)", xs: thm2},
	} {
		s := stats.Summarize(row.xs)
		t.Rows = append(t.Rows, []string{
			row.name, ff(s.Mean), ff(s.StdDev), ff(s.Min), ff(s.P10), ff(s.Max),
			ff(bound), ff4(stats.FractionBelow(row.xs, bound)),
		})
	}
	t.Notes = append(t.Notes,
		"Instance: 40-clique with weight 10⁶ per node plus 400 unit pendants (gen.StarOfCliques). The one-round output is all-or-nothing on the heavy clique; Theorem 2 concentrates far above the expectation bound.",
	)
	return t, nil
}

func setKey(set []bool) string {
	b := make([]byte, len(set))
	for i, in := range set {
		if in {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

func triangleTail() *graph.Graph {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	return b.MustBuild()
}
