package experiments

import (
	"math"

	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/mis"
)

// runE2 validates the sparsifier of Section 4.2: Lemma 3 (Δ_H = O(log n))
// and Lemma 5 (w(V_H) = Ω(min{w(V), w(V)·log n/Δ})).
func runE2(opts Options) (*Table, error) {
	trials := opts.trials(5, 2)
	t := &Table{
		ID:    "E2",
		Title: "Weighted sparsification (Theorem 9, Lemmas 3 and 5)",
		Claim: "Δ_H = O(log n) and w(V_H) = Ω(min{w(V), w(V)·log n/Δ}) w.h.p.",
		Columns: []string{
			"graph", "n", "Δ", "log₂n", "mean Δ_H", "max Δ_H", "4λ·log₂n",
			"mean w(V_H)/w(V)", "Lemma5 target/w(V)", "n_H (mean)",
		},
	}
	graphs := []namedGraph{
		{name: "clique", g: gen.Weighted(gen.Clique(512), gen.UniformWeights(1<<16), opts.seed())},
		{name: "gnp-dense", g: gen.Weighted(gen.GNP(1024, 0.2, opts.seed()), gen.PolyWeights(2), opts.seed())},
		{name: "gnp-mid", g: gen.Weighted(gen.GNP(1024, 0.05, opts.seed()+1), gen.UniformWeights(1000), opts.seed()+1)},
		{name: "bipartite", g: gen.Weighted(gen.CompleteBipartite(256, 256), gen.UniformWeights(100), opts.seed()+2)},
		{name: "skewed", g: gen.Weighted(gen.GNP(800, 0.15, opts.seed()+3), gen.SkewedWeights(0.01, 1<<24), opts.seed()+3)},
	}
	if opts.Quick {
		graphs = graphs[:2]
	}
	const lambda = 2.0
	for _, wl := range graphs {
		g := wl.g
		logn := math.Log2(float64(g.N()))
		var sumDH, maxDH, sumFrac, sumNH float64
		for trial := 0; trial < trials; trial++ {
			cfg := maxis.Config{Seed: opts.seed() + uint64(trial), Lambda: lambda}
			inH, err := maxis.SampleSparsifier(g, cfg, nil, nil)
			if err != nil {
				return nil, err
			}
			sub := g.Induce(inH)
			dh := float64(sub.G.MaxDegree())
			sumDH += dh
			if dh > maxDH {
				maxDH = dh
			}
			sumFrac += float64(sub.G.TotalWeight()) / float64(g.TotalWeight())
			sumNH += float64(sub.G.N())
		}
		target := math.Min(1, logn/float64(g.MaxDegree()))
		t.Rows = append(t.Rows, []string{
			wl.name, fi(g.N()), fi(g.MaxDegree()), ff(logn),
			ff(sumDH / float64(trials)), ff(maxDH), ff(4 * lambda * logn),
			ff4(sumFrac / float64(trials)), ff4(target), ff(sumNH / float64(trials)),
		})
	}
	t.Notes = append(t.Notes,
		"Lemma 5's target column is min{1, log n/Δ}: the fraction of w(V) the sparsifier must retain up to constants; the measured fraction should be at least a constant multiple of it.")
	return t, nil
}

// runE4 charts rounds versus n for Theorem 2 against the Bar-Yehuda et al.
// baseline at W = n² — the exponential-speed-up claim in its measured and
// budgeted forms.
func runE4(opts Options) (*Table, error) {
	sizes := []int{256, 512, 1024, 2048}
	if opts.Quick {
		sizes = []int{256, 512}
	}
	alg := mis.Ghaffari{}
	t := &Table{
		ID:    "E4",
		Title: "Rounds vs n: Theorem 2 against the [8] baseline (W = n²)",
		Claim: "Theorem 2 runs in poly(log log n)/ε rounds; [8] needs O(MIS(n,Δ)·log W)",
		Columns: []string{
			"n", "Δ", "log₂W", "thm2 rounds", "baseline rounds",
			"thm2 budget", "baseline budget", "budget speed-up",
		},
	}
	for _, n := range sizes {
		topo := gen.GNP(n, 0.25, opts.seed()) // dense: Δ ≈ n/4, the regime sparsification targets
		g := gen.Weighted(topo, gen.PolyWeights(2), opts.seed())
		cfg := maxis.Config{Seed: opts.seed(), MIS: alg}
		fast, err := maxis.Theorem2(g, 1, cfg)
		if err != nil {
			return nil, err
		}
		base, err := maxis.BarYehuda(g, cfg)
		if err != nil {
			return nil, err
		}
		deltaH := maxis.DeltaHBound(n, 2.0)
		fastBudget := maxis.BudgetTheorem2(alg, n, deltaH, 1)
		baseBudget := maxis.BudgetBarYehuda(alg, n, g.MaxDegree(), g.MaxWeight())
		t.Rows = append(t.Rows, []string{
			fi(n), fi(g.MaxDegree()), ff(math.Log2(float64(g.MaxWeight()))),
			fi(fast.Metrics.Rounds), fi(base.Metrics.Rounds),
			fi(fastBudget), fi(baseBudget),
			ff(float64(baseBudget) / float64(fastBudget)),
		})
	}
	// Budget-only rows at sizes beyond simulation: the paper's asymptotic
	// separation, instantiated with the declared MIS(n,Δ) budgets at
	// Δ = n/4 and W = n³.
	for _, logN := range []int{16, 20, 24, 30} {
		n := 1 << uint(logN)
		delta := n / 4
		deltaH := maxis.DeltaHBound(n, 2.0)
		fastBudget := maxis.BudgetTheorem2(alg, n, deltaH, 1)
		baseBudget := maxis.BudgetBarYehudaLogW(alg, n, delta, 3*logN)
		t.Rows = append(t.Rows, []string{
			"2^" + fi(logN), fi(delta), fi(3 * logN),
			"-", "-", fi(fastBudget), fi(baseBudget),
			ff(float64(baseBudget) / float64(fastBudget)),
		})
	}
	t.Notes = append(t.Notes,
		"Measured rounds use global termination detection (phases on empty residual graphs cost ~nothing); budgets charge every phase its declared w.h.p. MIS(n,Δ) bound, which is how the paper's round complexities compose.",
		"The budget-only rows ('-' measured columns) evaluate the same formulas at sizes beyond simulation: the baseline grows as log W · MIS(n,Δ) while Theorem 2 stays at ⌈16/ε⌉ · MIS(n, O(log n)) — the separation widens without bound.",
	)
	return t, nil
}

// runE5 fixes the topology and sweeps W: the baseline's rounds track log W
// while Theorem 2's stay flat.
func runE5(opts Options) (*Table, error) {
	logWs := []int{2, 6, 12, 18, 24}
	if opts.Quick {
		logWs = []int{2, 12, 24}
	}
	topo := gen.GNP(512, 0.06, opts.seed())
	alg := mis.Luby{}
	t := &Table{
		ID:    "E5",
		Title: "Rounds vs W on fixed topology (the log W factor of [8])",
		Claim: "Baseline rounds grow with log W; Theorem 1/2 rounds are W-independent",
		Columns: []string{
			"log₂W", "baseline scales", "baseline rounds", "baseline budget",
			"thm2 rounds", "thm2 budget",
		},
	}
	deltaH := maxis.DeltaHBound(topo.N(), 2.0)
	for _, lw := range logWs {
		g := gen.Weighted(topo, gen.UniformWeights(int64(1)<<uint(lw)), opts.seed())
		// The sweep knows its own weight bound 2^lw, so declare it instead
		// of letting the runtime re-scan the weights (and pin WithMaxWeight
		// on a real call site).
		cfg := maxis.Config{Seed: opts.seed(), MIS: alg, MaxWeight: int64(1) << uint(lw)}
		base, err := maxis.BarYehuda(g, cfg)
		if err != nil {
			return nil, err
		}
		fast, err := maxis.Theorem2(g, 1, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fi(lw), fi(int(base.Extra["scales"])), fi(base.Metrics.Rounds),
			fi(maxis.BudgetBarYehuda(alg, g.N(), g.MaxDegree(), g.MaxWeight())),
			fi(fast.Metrics.Rounds),
			fi(maxis.BudgetTheorem2(alg, g.N(), deltaH, 1)),
		})
	}
	return t, nil
}

// runE13 is the headline comparison: computing a full MIS versus a
// (1+ε)Δ-approximate MaxIS, in rounds, as n grows — the "exponentially
// easier than MIS" claim of the abstract.
func runE13(opts Options) (*Table, error) {
	sizes := []int{512, 1024, 2048, 4096, 8192, 16384, 32768}
	if opts.Quick {
		sizes = []int{512, 2048}
	}
	t := &Table{
		ID:    "E13",
		Title: "Headline: (1+ε)Δ-approx MaxIS vs full MIS (unweighted)",
		Claim: "Finding a (1+ε)Δ-approximation for MaxIS is exponentially easier than MIS (via the Ω(√(log n/log log n)) MIS lower bound of [31])",
		Columns: []string{
			"n", "Δ", "MIS rounds (Luby)", "MIS rounds (Ghaffari)",
			"thm5 rounds (ε=0.5)", "thm2 rounds (ε=0.5)", "log₂n", "√(log n/loglog n)",
		},
	}
	for _, n := range sizes {
		g := gen.GNP(n, 12/float64(n), opts.seed())
		luby, err := mis.Compute(mis.Luby{}, g)
		if err != nil {
			return nil, err
		}
		ghaf, err := mis.Compute(mis.Ghaffari{}, g)
		if err != nil {
			return nil, err
		}
		thm5, err := maxis.Theorem5(g, 0.5, maxis.Config{Seed: opts.seed()})
		if err != nil {
			return nil, err
		}
		thm2, err := maxis.Theorem2(g, 0.5, maxis.Config{Seed: opts.seed(), MIS: mis.Ghaffari{}})
		if err != nil {
			return nil, err
		}
		logn := math.Log2(float64(n))
		t.Rows = append(t.Rows, []string{
			fi(n), fi(g.MaxDegree()),
			fi(luby.Exec.Rounds), fi(ghaf.Exec.Rounds),
			fi(thm5.Metrics.Rounds), fi(thm2.Metrics.Rounds),
			ff(logn), ff(math.Sqrt(logn / math.Log2(logn))),
		})
	}
	t.Notes = append(t.Notes,
		"Theorem 5's round count is flat in n while both MIS algorithms grow with log n — the measured shape of the exponential separation (a true lower-bound curve cannot be measured, only the upper-bound side).",
	)
	return t, nil
}
