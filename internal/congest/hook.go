package congest

import "fmt"

// NodeState describes a node's availability in one round, as reported by a
// DeliveryHook. A node that is not up neither executes its Round step nor
// receives the messages arriving that round (its inbox slots stay empty).
type NodeState int

const (
	// NodeUp is normal operation.
	NodeUp NodeState = iota
	// NodeDown is a transient crash (crash-recovery): the node skips the
	// round but keeps its state and may come back later. Skipped rounds are
	// observable to the process as a gap in the round numbers it sees.
	NodeDown
	// NodeStopped is a permanent crash (crash-stop): the simulator marks
	// the node halted; its Output() reflects the state at crash time.
	NodeStopped
)

// DeliveryHook lets a fault injector intercept the simulator between send
// and receive. The hook sees every message of every engine at the same
// deterministic point — the single-threaded delivery phase — so an
// execution under a given hook is identical across the sequential, pool,
// and actor engines.
//
// Begin is called once per Run, before round 1, with the node count.
// State reports node availability; it is called from engine worker
// goroutines and must be safe for concurrent use and pure (same answer for
// the same arguments throughout a run). Deliver is called sequentially, in
// deterministic (sender, port) order, once per sent message whose receiver
// is up; it returns the message to deliver (nil = lost) and whether a
// duplicate copy of the original should additionally arrive one round
// later. A rewritten payload must keep the original bit length; the
// simulator verifies a wire.Checksum over the payload and discards any
// message whose checksum no longer matches (detectable corruption).
type DeliveryHook interface {
	Begin(n int)
	State(round, v int) NodeState
	Deliver(round, from, to int, m *Message) (out *Message, dup bool)
}

// WithFaults installs a delivery hook (typically a *fault.Injector). When a
// hook is installed, NodeInfo.Faulty is true, which protocols use to enable
// defensive message formats whose cost is only justified under faults.
func WithFaults(hook DeliveryHook) Option { return func(c *config) { c.hook = hook } }

// TruncationError reports that a protocol exceeded the round limit set by
// WithMaxRounds. It wraps ErrRoundLimit, so errors.Is(err, ErrRoundLimit)
// continues to hold, and carries the partial Result — Outputs is fully
// populated from every node's state at the moment the limit fired — so
// callers that can use a best-effort answer are not left empty-handed.
type TruncationError struct {
	// Limit is the round limit that fired.
	Limit int
	// Partial is the truncated execution's Result. Outputs is always
	// populated (never nil entries beyond what Output() itself returns)
	// and Truncated is set.
	Partial *Result
}

func (e *TruncationError) Error() string {
	return fmt.Sprintf("%v: %d rounds", ErrRoundLimit, e.Limit)
}

func (e *TruncationError) Unwrap() error { return ErrRoundLimit }
