package congest

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"distmwis/internal/graph/gen"
	"distmwis/internal/trace"
	"distmwis/internal/wire"
)

// labeledFlood is floodMax with a protocol-emitted stage annotation.
type labeledFlood struct{ floodMax }

func (p *labeledFlood) TracePhase(round int) string {
	if round%2 == 1 {
		return "flood"
	}
	return "absorb"
}

func TestTraceMatchesResultAggregates(t *testing.T) {
	g := gen.GNP(200, 0.05, 7)
	ring := trace.NewRing(0)
	res, err := Run(g, func() Process { return &labeledFlood{floodMax{rounds: 12}} },
		WithSeed(3), WithTracer(ring), WithTraceLabel("flood-test"))
	if err != nil {
		t.Fatal(err)
	}

	rounds := ring.Rounds()
	if len(rounds) != res.Rounds {
		t.Fatalf("trace has %d records, Result.Rounds = %d", len(rounds), res.Rounds)
	}
	var msgs, bits int64
	var halts, maxBits int
	for i, r := range rounds {
		if r.Round != i+1 {
			t.Errorf("record %d has round %d, want %d", i, r.Round, i+1)
		}
		if r.Label != "flood-test" {
			t.Errorf("record %d label = %q, want flood-test", i, r.Label)
		}
		wantPhase := "flood"
		if (i+1)%2 == 0 {
			wantPhase = "absorb"
		}
		if r.Phase != wantPhase {
			t.Errorf("round %d phase = %q, want %q", r.Round, r.Phase, wantPhase)
		}
		msgs += r.Messages
		bits += r.Bits
		halts += r.Halts
		if r.MaxMessageBits > maxBits {
			maxBits = r.MaxMessageBits
		}
	}
	if msgs != res.Messages {
		t.Errorf("per-round messages sum to %d, Result.Messages = %d", msgs, res.Messages)
	}
	if bits != res.Bits {
		t.Errorf("per-round bits sum to %d, Result.Bits = %d", bits, res.Bits)
	}
	if maxBits != res.MaxMessageBits {
		t.Errorf("per-round max = %d, Result.MaxMessageBits = %d", maxBits, res.MaxMessageBits)
	}
	if halts != g.N() {
		t.Errorf("halts sum to %d, want every node (%d)", halts, g.N())
	}

	runs := ring.Runs()
	if len(runs) != 1 || runs[0].Label != "flood-test" || runs[0].N != g.N() {
		t.Errorf("run metadata = %+v", runs)
	}
	if runs[0].Bandwidth != res.Bandwidth {
		t.Errorf("traced bandwidth %d != result bandwidth %d", runs[0].Bandwidth, res.Bandwidth)
	}
	sums := ring.Summaries()
	if len(sums) != 1 {
		t.Fatalf("summaries = %d, want 1", len(sums))
	}
	if sums[0].Rounds != res.Rounds || sums[0].Bits != res.Bits || sums[0].Truncated {
		t.Errorf("summary %+v disagrees with result", sums[0])
	}
}

// stripTiming zeroes the wall-clock fields, which legitimately differ
// between engines and runs.
func stripTiming(rounds []trace.Round) []trace.Round {
	out := make([]trace.Round, len(rounds))
	for i, r := range rounds {
		r.ComputeNanos, r.DeliveryNanos = 0, 0
		out[i] = r
	}
	return out
}

func TestTraceEngineParity(t *testing.T) {
	g := gen.GNP(300, 0.03, 5)
	record := func(e Engine) ([]trace.Round, string) {
		ring := trace.NewRing(0)
		_, err := Run(g, func() Process { return &labeledFlood{floodMax{rounds: 8}} },
			WithSeed(9), WithEngine(e), WithWorkers(8), WithTracer(ring))
		if err != nil {
			t.Fatal(err)
		}
		runs := ring.Runs()
		if len(runs) != 1 {
			t.Fatalf("runs = %d, want 1", len(runs))
		}
		return stripTiming(ring.Rounds()), runs[0].Engine
	}
	seq, seqName := record(EngineSequential)
	if seqName != "sequential" {
		t.Errorf("engine name = %q, want sequential", seqName)
	}
	for _, tc := range []struct {
		engine Engine
		name   string
	}{
		{EnginePool, "pool"},
		{EngineActors, "actors"},
	} {
		got, name := record(tc.engine)
		if name != tc.name {
			t.Errorf("engine name = %q, want %q", name, tc.name)
		}
		if !reflect.DeepEqual(seq, got) {
			t.Errorf("%s trace differs from sequential trace", tc.name)
		}
	}
}

func TestTracerAbsentIsBitIdentical(t *testing.T) {
	g := gen.GNP(150, 0.05, 11)
	plain, err := Run(g, func() Process { return &floodMax{rounds: 6} }, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(g, func() Process { return &floodMax{rounds: 6} }, WithSeed(4),
		WithTracer(trace.NewRing(0)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("tracer changed the Result:\nplain  %+v\ntraced %+v", plain, traced)
	}
}

func TestTraceEndRunOnTruncation(t *testing.T) {
	ring := trace.NewRing(0)
	g := gen.Path(20)
	res, err := Run(g, func() Process { return &floodMax{rounds: 50} },
		WithHardStop(5), WithTracer(ring))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	if got := len(ring.Rounds()); got != 5 {
		t.Errorf("records = %d, want 5", got)
	}
	sums := ring.Summaries()
	if len(sums) != 1 || !sums[0].Truncated || sums[0].Rounds != 5 {
		t.Errorf("summary = %+v, want truncated 5-round summary", sums)
	}
}

func TestTraceRecordsFaultDrops(t *testing.T) {
	ring := trace.NewRing(0)
	res, err := Run(gen.Path(10), func() Process { return &floodMax{rounds: 10} },
		WithFaults(&stubHook{dropFrom: 0, crashNode: -1}), WithTracer(ring))
	if err != nil {
		t.Fatal(err)
	}
	var lost int64
	for _, r := range ring.Rounds() {
		lost += r.FaultLost
	}
	if lost == 0 || lost != res.FaultLost {
		t.Errorf("per-round FaultLost sums to %d, Result has %d", lost, res.FaultLost)
	}
}

// maxWeightProbe reports the MaxWeight bound it was told.
type maxWeightProbe struct{ info NodeInfo }

func (p *maxWeightProbe) Init(info NodeInfo)                       { p.info = info }
func (p *maxWeightProbe) Round(int, []*Message) ([]*Message, bool) { return nil, true }
func (p *maxWeightProbe) Output() any                              { return p.info.MaxWeight }

func TestWithMaxWeight(t *testing.T) {
	g := gen.Weighted(gen.Cycle(8), gen.UniformWeights(100), 3)
	trueMax := g.MaxWeight()

	// A sweep bound at least the true maximum is handed to every node
	// verbatim, decoupling wire sizing from the realized maximum.
	res, err := Run(g, func() Process { return &maxWeightProbe{} }, WithMaxWeight(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if out.(int64) != 1<<20 {
			t.Fatalf("node %d told MaxWeight %d, want %d", v, out, int64(1)<<20)
		}
	}

	// A bound below the true maximum is a misconfiguration, not a silent
	// re-derivation.
	if _, err := Run(g, func() Process { return &maxWeightProbe{} }, WithMaxWeight(trueMax-1)); err == nil {
		t.Error("expected error for MaxWeight below the true maximum")
	}
	if _, err := Run(g, func() Process { return &maxWeightProbe{} }, WithMaxWeight(-5)); err == nil {
		t.Error("expected error for negative MaxWeight")
	}

	// Default: the scan result.
	res, err = Run(g, func() Process { return &maxWeightProbe{} })
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs[0].(int64); got != trueMax {
		t.Errorf("default MaxWeight = %d, want true max %d", got, trueMax)
	}
}

func TestPoolEngineClampsWorkers(t *testing.T) {
	g := gen.Cycle(32)
	for _, workers := range []int{0, -3} {
		res, err := Run(g, func() Process { return &floodMax{rounds: 4} },
			WithEngine(EnginePool), WithWorkers(workers), WithSeed(2))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Rounds == 0 {
			t.Fatalf("workers=%d: no rounds executed", workers)
		}
	}
}

// badAbove sends an oversized message from every node with Index >= from.
type badAbove struct {
	info NodeInfo
	from int
}

func (p *badAbove) Init(info NodeInfo) { p.info = info }

func (p *badAbove) Round(int, []*Message) ([]*Message, bool) {
	var w wire.Writer
	if p.info.Index >= p.from {
		for i := 0; i < 100; i++ {
			w.WriteBits(0xFFFF, 16)
		}
	} else {
		w.WriteBool(true)
	}
	out := make([]*Message, p.info.Degree)
	m := NewMessage(&w)
	for i := range out {
		out[i] = m
	}
	return out, true
}

func (p *badAbove) Output() any { return nil }

func TestDeterministicErrorSelection(t *testing.T) {
	g := gen.Cycle(100)
	const firstBad = 37
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{name: "sequential", opts: []Option{WithEngine(EngineSequential)}},
		{name: "pool", opts: []Option{WithEngine(EnginePool), WithWorkers(8)}},
		{name: "actors", opts: []Option{WithEngine(EngineActors)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(g, func() Process { return &badAbove{from: firstBad} }, tc.opts...)
			if err == nil {
				t.Fatal("expected bandwidth violation")
			}
			want := fmt.Sprintf("node %d ", firstBad)
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not name the lowest-index failing node %d", err, firstBad)
			}
		})
	}
}

func TestMeasureEngines(t *testing.T) {
	g := gen.GNP(128, 0.05, 1)
	stats, err := MeasureEngines(g, func() Process { return &floodMax{rounds: 6} }, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Timings) != 3 {
		t.Fatalf("timings = %d, want 3 engines", len(stats.Timings))
	}
	names := map[string]bool{}
	rounds := stats.Timings[0].Rounds
	for _, tm := range stats.Timings {
		names[tm.Engine] = true
		if tm.Rounds != rounds {
			t.Errorf("%s ran %d rounds, want %d (identical executions)", tm.Engine, tm.Rounds, rounds)
		}
		if tm.WallNanos != tm.ComputeNanos+tm.DeliveryNanos {
			t.Errorf("%s wall %d != compute %d + delivery %d", tm.Engine, tm.WallNanos, tm.ComputeNanos, tm.DeliveryNanos)
		}
	}
	for _, want := range []string{"sequential", "pool", "actors"} {
		if !names[want] {
			t.Errorf("missing engine %q in %v", want, names)
		}
	}
	if !strings.Contains(stats.String(), "sequential") {
		t.Error("String() missing engine rows")
	}
}

// BenchmarkRun pins the zero-overhead contract in numbers: the untraced
// variants must match the seed implementation, and the traced variants
// show the (small, opt-in) price of recording.
func BenchmarkRun(b *testing.B) {
	g := gen.GNP(256, 0.05, 3)
	bench := func(b *testing.B, opts ...Option) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(g, func() Process { return &floodMax{rounds: 8} }, opts...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { bench(b, WithEngine(EngineSequential)) })
	b.Run("sequential-traced", func(b *testing.B) {
		bench(b, WithEngine(EngineSequential), WithTracer(trace.NewRing(0)))
	})
	b.Run("pool", func(b *testing.B) { bench(b, WithEngine(EnginePool), WithWorkers(4)) })
	b.Run("pool-traced", func(b *testing.B) {
		bench(b, WithEngine(EnginePool), WithWorkers(4), WithTracer(trace.NewRing(0)))
	})
}
