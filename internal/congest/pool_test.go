package congest

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distmwis/internal/graph/gen"
	"distmwis/internal/wire"
)

// TestParallelForCoversRange checks the guided chunking visits every index
// exactly once and leaves results identical to a sequential loop.
func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 15, 16, 17, 1000} {
		for _, workers := range []int{1, 2, 3, 8, 40} {
			visits := make([]int32, n)
			parallelFor(n, workers, func(i int) {
				atomic.AddInt32(&visits[i], 1)
			})
			for i, c := range visits {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestParallelForSkewRebalances is the regression test for the static
// contiguous chunking this package used to ship: on a degree-skewed
// workload where all the cost sits in the lowest indices (power-law graphs
// cluster hubs there), a static split pins the entire hot range to worker 0
// while the rest go idle. The test encodes that as a deadline: index 0
// blocks until some other worker has entered the hot region. Guided
// chunking passes because the hot region spans several chunks, so a second
// worker claims one while the first is busy; static contiguous chunking
// times out, because the whole hot region belongs to the one blocked
// worker.
func TestParallelForSkewRebalances(t *testing.T) {
	const n, workers = 4096, 4
	hot := n / workers // the old static chunk: [0, hot) all on worker 0
	chunk := poolChunk(n, workers)
	if chunk >= hot {
		t.Fatalf("guided chunk %d does not subdivide the hot region %d; test vacuous", chunk, hot)
	}
	var once sync.Once
	otherWorkerInHot := make(chan struct{})
	var timedOut atomic.Bool
	parallelFor(n, workers, func(i int) {
		switch {
		case i == 0:
			// Simulates the expensive hub: holds its worker until the hot
			// region is shared. A worker that owns all of [0, hot) would
			// never be joined and the deadline fires.
			select {
			case <-otherWorkerInHot:
			case <-time.After(10 * time.Second):
				timedOut.Store(true)
			}
		case i >= chunk && i < hot:
			// Any index past the first chunk but inside the hot region can
			// only run this early on a different worker.
			once.Do(func() { close(otherWorkerInHot) })
		}
	})
	if timedOut.Load() {
		t.Fatal("hot region was never rebalanced onto a second worker (static-chunking behaviour)")
	}
}

// poolSeqProcess broadcasts round-stamped payloads through pooled messages
// and records every (round, value) pair heard per port. It exists to pin
// message-pool integrity: if a recycled buffer were handed out while still
// readable through a stale inbox slot, the recorded sequences would show a
// value from the wrong round.
type poolSeqProcess struct {
	info   NodeInfo
	rounds int
	w      wire.Writer
	out    []*Message
	heard  []uint64
}

func (p *poolSeqProcess) Init(info NodeInfo) {
	p.info = info
	p.out = make([]*Message, info.Degree)
}

func (p *poolSeqProcess) Round(round int, recv []*Message) ([]*Message, bool) {
	for _, m := range recv {
		if m == nil {
			continue
		}
		r := m.Reader()
		rd, e1 := r.ReadUint(uint64(p.rounds))
		id, e2 := r.ReadUint(p.info.MaxID)
		if e1 != nil || e2 != nil {
			panic("garbled payload from pooled message")
		}
		if int(rd) != round-1 {
			panic(fmt.Sprintf("node %d round %d: payload stamped %d (stale recycled buffer?)", p.info.Index, round, rd))
		}
		p.heard = append(p.heard, id)
	}
	if round > p.rounds {
		return nil, true
	}
	p.w.Reset()
	p.w.WriteUint(uint64(round), uint64(p.rounds))
	p.w.WriteUint(p.info.ID, p.info.MaxID)
	m := NewPooledMessage(&p.w)
	for i := range p.out {
		p.out[i] = m
	}
	return p.out, false
}

func (p *poolSeqProcess) Output() any { return p.heard }

// TestPooledMessagesBitIdentical runs the pooled-broadcast protocol under
// all three engines and checks (a) payload integrity via the in-process
// round stamps, (b) cross-engine equality of the full received sequences,
// and (c) equality with a NewMessage-based control run, proving pooling is
// invisible to protocol semantics.
func TestPooledMessagesBitIdentical(t *testing.T) {
	g := gen.GNP(96, 0.07, 9)
	newProc := func() Process { return &poolSeqProcess{rounds: 9} }
	ref, err := Run(g, newProc, WithSeed(3), WithEngine(EngineSequential))
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{EnginePool, EngineActors} {
		res, err := Run(g, newProc, WithSeed(3), WithEngine(engine), WithWorkers(4))
		if err != nil {
			t.Fatalf("engine %d: %v", engine, err)
		}
		if !reflect.DeepEqual(ref.Outputs, res.Outputs) {
			t.Fatalf("engine %d: outputs differ from sequential", engine)
		}
	}
}

// TestPoolEngineManyRounds pins the persistent-worker pool across a long
// run: workers must survive hundreds of round barriers and shut down
// cleanly (the old engine spawned fresh goroutines per round, so leaks of
// this kind were impossible by construction — now they must be tested).
func TestPoolEngineManyRounds(t *testing.T) {
	g := gen.Cycle(256)
	res, err := Run(g, func() Process { return &poolSeqProcess{rounds: 300} },
		WithSeed(1), WithEngine(EnginePool), WithWorkers(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 301 {
		t.Fatalf("rounds = %d, want 301", res.Rounds)
	}
}
