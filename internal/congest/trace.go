package congest

import (
	"fmt"

	"distmwis/internal/graph"
	"distmwis/internal/trace"
)

// WithTracer installs a round-level tracer (see internal/trace). The
// simulator calls it from the single delivery goroutine: BeginRun before
// round 1, OnRound after every completed round with that round's traffic
// deltas and compute/delivery wall-clock split, EndRun on every exit path.
//
// Tracing is strictly observational — with or without a tracer, executions
// on the same seed produce bit-identical Results — and costs nothing when
// absent: the untraced round loop performs no clock reads and no extra
// bookkeeping.
func WithTracer(t trace.Tracer) Option { return func(c *config) { c.tracer = t } }

// WithTraceLabel attributes this run's trace records to an orchestrator
// phase label (e.g. "boost/push/goodnodes/mis"). A no-op without a tracer.
func WithTraceLabel(label string) Option { return func(c *config) { c.traceLabel = label } }

// PhaseLabeler is an optional interface a Process may implement to label
// the protocol stage each round belongs to (e.g. Luby's mark/join/retire
// cadence). The simulator samples node 0's process once per round, so the
// label must be a pure function of the round number, identical across
// nodes — never derived from per-node state.
type PhaseLabeler interface {
	TracePhase(round int) string
}

// traceCounters snapshots the running aggregates at the top of a round so
// the tracer can record per-round deltas.
type traceCounters struct {
	messages    int64
	bits        int64
	lost        int64
	corrupted   int64
	duplicated  int64
	retransmits int64
	live        int
}

func (s *simulator) snapshotCounters(live int) traceCounters {
	c := traceCounters{
		messages:   s.res.Messages,
		bits:       s.res.Bits,
		lost:       s.res.FaultLost,
		corrupted:  s.res.FaultCorrupted,
		duplicated: s.res.FaultDuplicated,
		live:       live,
	}
	if s.cfg.reliable != nil {
		// Raw cumulative value: the per-round delta subtracts two snapshots,
		// so the run-start base cancels.
		c.retransmits = s.cfg.reliable.Counters().Retransmits
	}
	return c
}

// engineName maps a resolved engine to its trace name.
func engineName(e Engine) string {
	switch e {
	case EngineSequential:
		return "sequential"
	case EnginePool:
		return "pool"
	case EngineActors:
		return "actors"
	default:
		return "auto"
	}
}

// MeasureEngines runs the same protocol once per engine — sequential,
// pool, actors — on identical seeds and returns the wall-clock comparison.
// The executions are identical by construction (TestEnginesAgree pins
// this), so the numbers isolate pure scheduling cost: the baseline future
// performance work is judged against. opts apply to every run and must not
// themselves select an engine or install a tracer.
func MeasureEngines(g *graph.Graph, newProcess func() Process, opts ...Option) (*trace.EngineStats, error) {
	stats := &trace.EngineStats{}
	for _, e := range []Engine{EngineSequential, EnginePool, EngineActors} {
		tot := &trace.Totals{}
		runOpts := append(append([]Option{}, opts...), WithEngine(e), WithTracer(tot))
		res, err := Run(g, newProcess, runOpts...)
		if err != nil {
			return nil, fmt.Errorf("congest: measuring %s engine: %w", engineName(e), err)
		}
		stats.Add(trace.EngineTiming{
			Engine:        engineName(e),
			Rounds:        res.Rounds,
			ComputeNanos:  tot.ComputeNanos,
			DeliveryNanos: tot.DeliveryNanos,
			WallNanos:     tot.ComputeNanos + tot.DeliveryNanos,
		})
	}
	return stats, nil
}
