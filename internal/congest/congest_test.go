package congest

import (
	"errors"
	"reflect"
	"testing"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/wire"
)

// idExchange broadcasts the node's ID in round 1 and records the IDs heard
// in round 2.
type idExchange struct {
	info  NodeInfo
	heard []uint64
}

func (p *idExchange) Init(info NodeInfo) { p.info = info }

func (p *idExchange) Round(round int, recv []*Message) ([]*Message, bool) {
	switch round {
	case 1:
		var w wire.Writer
		w.WriteUint(p.info.ID, p.info.MaxID)
		m := NewMessage(&w)
		out := make([]*Message, p.info.Degree)
		for i := range out {
			out[i] = m
		}
		return out, false
	default:
		for _, m := range recv {
			if m == nil {
				continue
			}
			id, err := m.Reader().ReadUint(p.info.MaxID)
			if err != nil {
				panic(err)
			}
			p.heard = append(p.heard, id)
		}
		return nil, true
	}
}

func (p *idExchange) Output() any { return p.heard }

func TestIDExchangeLearnsNeighbors(t *testing.T) {
	g := gen.Cycle(8)
	res, err := Run(g, func() Process { return &idExchange{} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", res.Rounds)
	}
	for v := 0; v < g.N(); v++ {
		heard := res.Outputs[v].([]uint64)
		want := map[uint64]bool{}
		for _, u := range g.Neighbors(v) {
			want[g.ID(int(u))] = true
		}
		if len(heard) != len(want) {
			t.Fatalf("node %d heard %d ids, want %d", v, len(heard), len(want))
		}
		for _, id := range heard {
			if !want[id] {
				t.Errorf("node %d heard unexpected id %d", v, id)
			}
		}
	}
	if res.Messages != int64(2*g.M()) {
		t.Errorf("Messages = %d, want %d", res.Messages, 2*g.M())
	}
	if res.MaxMessageBits == 0 || res.Bits == 0 {
		t.Error("metrics not recorded")
	}
}

// floodMax floods the maximum ID seen for a fixed number of rounds; on a
// connected graph with enough rounds every node should know the global max.
type floodMax struct {
	info   NodeInfo
	best   uint64
	rounds int
}

func (p *floodMax) Init(info NodeInfo) { p.best = info.ID; p.info = info }

func (p *floodMax) Round(round int, recv []*Message) ([]*Message, bool) {
	for _, m := range recv {
		if m == nil {
			continue
		}
		id, err := m.Reader().ReadUint(p.info.MaxID)
		if err != nil {
			panic(err)
		}
		if id > p.best {
			p.best = id
		}
	}
	if round > p.rounds {
		return nil, true
	}
	var w wire.Writer
	w.WriteUint(p.best, p.info.MaxID)
	m := NewMessage(&w)
	out := make([]*Message, p.info.Degree)
	for i := range out {
		out[i] = m
	}
	return out, false
}

func (p *floodMax) Output() any { return p.best }

func TestFloodMaxConverges(t *testing.T) {
	const n = 20
	g := gen.Path(n)
	res, err := Run(g, func() Process { return &floodMax{rounds: n} })
	if err != nil {
		t.Fatal(err)
	}
	want := g.MaxID()
	for v := 0; v < n; v++ {
		if res.Outputs[v].(uint64) != want {
			t.Errorf("node %d best = %d, want %d", v, res.Outputs[v], want)
		}
	}
}

func TestFloodMaxTruncated(t *testing.T) {
	const n = 30
	g := gen.Path(n)
	// After 3 rounds, node 0 cannot know IDs further than distance ~3.
	res, err := Run(g, func() Process { return &floodMax{rounds: n} }, WithHardStop(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	if res.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", res.Rounds)
	}
	// Node 0's knowledge horizon: IDs of nodes within distance 3 (IDs are
	// v+1 on a path, so max visible is 4... node index 3 => ID 4).
	if got := res.Outputs[0].(uint64); got > 4 {
		t.Errorf("node 0 learned ID %d beyond its 3-round horizon", got)
	}
}

// bigTalker violates the CONGEST bandwidth on purpose.
type bigTalker struct{ info NodeInfo }

func (p *bigTalker) Init(info NodeInfo) { p.info = info }

func (p *bigTalker) Round(round int, recv []*Message) ([]*Message, bool) {
	var w wire.Writer
	for i := 0; i < 100; i++ {
		w.WriteBits(0xFFFF, 16) // 1600 bits, far over any log-n budget here
	}
	out := make([]*Message, p.info.Degree)
	m := NewMessage(&w)
	for i := range out {
		out[i] = m
	}
	return out, true
}

func (p *bigTalker) Output() any { return nil }

func TestBandwidthEnforced(t *testing.T) {
	g := gen.Cycle(16)
	if _, err := Run(g, func() Process { return &bigTalker{} }); err == nil {
		t.Fatal("expected bandwidth violation in CONGEST")
	}
	// The same protocol is legal in LOCAL.
	if _, err := Run(g, func() Process { return &bigTalker{} }, WithModel(ModelLocal)); err != nil {
		t.Fatalf("LOCAL run failed: %v", err)
	}
}

func TestBandwidthValue(t *testing.T) {
	tests := []struct {
		nUpper, factor, want int
	}{
		{nUpper: 2, factor: 1, want: 1},
		{nUpper: 1024, factor: 1, want: 10},
		{nUpper: 1024, factor: 8, want: 80},
		{nUpper: 1025, factor: 1, want: 11},
	}
	for _, tt := range tests {
		if got := Bandwidth(tt.nUpper, tt.factor); got != tt.want {
			t.Errorf("Bandwidth(%d,%d) = %d, want %d", tt.nUpper, tt.factor, got, tt.want)
		}
	}
}

// Cross-engine agreement on every registered algorithm is covered by the
// registry-generated parity suite in internal/protocol (parity_test.go),
// which replaced the hand-listed TestEnginesAgree that lived here.

func TestActorEngineErrorsAndShutdown(t *testing.T) {
	// Bandwidth violations must surface cleanly through the actor engine
	// (and its goroutines must be joined — the -race run guards leaks).
	g := gen.Cycle(80)
	if _, err := Run(g, func() Process { return &bigTalker{} }, WithEngine(EngineActors)); err == nil {
		t.Fatal("expected bandwidth violation through actor engine")
	}
	// And a full successful protocol, twice, to exercise pool reuse paths.
	for seed := uint64(1); seed <= 2; seed++ {
		res, err := Run(g, func() Process { return &floodMax{rounds: 5} }, WithEngine(EngineActors), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds == 0 {
			t.Fatal("no rounds executed")
		}
	}
}

func TestSeedChangesRandomness(t *testing.T) {
	g := gen.Cycle(64)
	run := func(seed uint64) []any {
		res, err := Run(g, func() Process { return &coinFlipper{} }, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a, b := run(1), run(2)
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical random outputs")
	}
	if !reflect.DeepEqual(a, run(1)) {
		t.Error("same seed not reproducible")
	}
}

type coinFlipper struct {
	info NodeInfo
	coin uint64
}

func (p *coinFlipper) Init(info NodeInfo) { p.info = info }

func (p *coinFlipper) Round(int, []*Message) ([]*Message, bool) {
	p.coin = p.info.Rand.Uint64()
	return nil, true
}

func (p *coinFlipper) Output() any { return p.coin }

func TestNUpperValidation(t *testing.T) {
	g := gen.Cycle(10)
	if _, err := Run(g, func() Process { return &coinFlipper{} }, WithNUpper(5)); err == nil {
		t.Error("expected error for NUpper < n")
	}
}

func TestRoundLimit(t *testing.T) {
	g := gen.Cycle(4)
	_, err := Run(g, func() Process { return &neverDone{} }, WithMaxRounds(10))
	if !errors.Is(err, ErrRoundLimit) {
		t.Errorf("err = %v, want ErrRoundLimit", err)
	}
}

type neverDone struct{}

func (p *neverDone) Init(NodeInfo)                            {}
func (p *neverDone) Round(int, []*Message) ([]*Message, bool) { return nil, false }
func (p *neverDone) Output() any                              { return nil }

func TestTooManyPortsRejected(t *testing.T) {
	g := gen.Path(3)
	_, err := Run(g, func() Process { return &overSender{} })
	if err == nil {
		t.Error("expected error for sending on more ports than degree")
	}
}

type overSender struct{ info NodeInfo }

func (p *overSender) Init(info NodeInfo) { p.info = info }

func (p *overSender) Round(int, []*Message) ([]*Message, bool) {
	var w wire.Writer
	w.WriteBool(true)
	out := make([]*Message, p.info.Degree+1)
	for i := range out {
		out[i] = NewMessage(&w)
	}
	return out, true
}

func (p *overSender) Output() any { return nil }

func TestMessagesToHaltedNodesDropped(t *testing.T) {
	// Node 0 halts immediately; node 1 keeps sending to it for 3 rounds.
	// The run must terminate cleanly with correct message accounting.
	g := gen.Path(2)
	res, err := Run(g, func() Process { return &stubbornSender{} }, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Errorf("rounds = %d, want 4", res.Rounds)
	}
}

// stubbornSender: the node with the smaller ID halts in round 1; the other
// keeps sending until round 4.
type stubbornSender struct{ info NodeInfo }

func (p *stubbornSender) Init(info NodeInfo) { p.info = info }

func (p *stubbornSender) Round(round int, recv []*Message) ([]*Message, bool) {
	if p.info.ID == 1 {
		return nil, true // halts immediately, will receive dropped messages
	}
	var w wire.Writer
	w.WriteBool(true)
	out := make([]*Message, p.info.Degree)
	for i := range out {
		out[i] = NewMessage(&w)
	}
	return out, round >= 4
}

func (p *stubbornSender) Output() any { return nil }

func TestBoolOutputs(t *testing.T) {
	res := &Result{Outputs: []any{true, false, nil, "x", true}}
	got := BoolOutputs(res)
	want := []bool{true, false, false, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BoolOutputs = %v, want %v", got, want)
	}
}

// portConsistency checks that messages are delivered on the correct reverse
// ports: each node sends its ID tagged with the port it used, and the
// receiver verifies the sender is exactly the neighbour on the receiving
// port.
type portConsistency struct {
	info NodeInfo
	g    *graph.Graph
	ok   bool
}

func (p *portConsistency) Init(info NodeInfo) { p.info = info; p.ok = true }

func (p *portConsistency) Round(round int, recv []*Message) ([]*Message, bool) {
	if round == 1 {
		out := make([]*Message, p.info.Degree)
		for i := range out {
			var w wire.Writer
			w.WriteUint(p.info.ID, p.info.MaxID)
			out[i] = NewMessage(&w)
		}
		return out, false
	}
	for port, m := range recv {
		if m == nil {
			p.ok = false
			continue
		}
		id, _ := m.Reader().ReadUint(p.info.MaxID)
		wantID := p.g.ID(int(p.g.Neighbors(p.info.Index)[port]))
		if id != wantID {
			p.ok = false
		}
	}
	return nil, true
}

func (p *portConsistency) Output() any { return p.ok }

func TestPortConsistency(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{name: "cycle", g: gen.Cycle(9)},
		{name: "gnp", g: gen.GNP(120, 0.08, 3)},
		{name: "clique", g: gen.Clique(15)},
		{name: "tree", g: gen.RandomTree(80, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.g, func() Process { return &portConsistency{g: tc.g} })
			if err != nil {
				t.Fatal(err)
			}
			for v, out := range res.Outputs {
				if !out.(bool) {
					t.Errorf("node %d saw misrouted message", v)
				}
			}
		})
	}
}

func TestTruncationErrorCarriesPartial(t *testing.T) {
	const n = 30
	g := gen.Path(n)
	res, err := Run(g, func() Process { return &floodMax{rounds: n} }, WithMaxRounds(3))
	if err == nil {
		t.Fatal("expected round-limit error")
	}
	if res != nil {
		t.Fatal("Run must return a nil result alongside the error")
	}
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("error %v does not unwrap to ErrRoundLimit", err)
	}
	var te *TruncationError
	if !errors.As(err, &te) {
		t.Fatalf("error %T is not a TruncationError", err)
	}
	if te.Limit != 3 {
		t.Errorf("Limit = %d, want 3", te.Limit)
	}
	if te.Partial == nil || !te.Partial.Truncated {
		t.Fatal("TruncationError must carry the truncated partial result")
	}
	if len(te.Partial.Outputs) != n {
		t.Fatalf("partial outputs: got %d, want %d", len(te.Partial.Outputs), n)
	}
	for v, out := range te.Partial.Outputs {
		if _, ok := out.(uint64); !ok {
			t.Fatalf("node %d output missing from partial result", v)
		}
	}
}

// stubHook is a minimal DeliveryHook for in-package tests (the real
// injector lives in internal/fault, which imports congest).
type stubHook struct {
	dropFrom  int // drop every message this node sends (-1 = none)
	crashNode int // crash-stop this node at crashAt (-1 = none)
	crashAt   int
}

func (h *stubHook) Begin(n int) {}

func (h *stubHook) State(round, v int) NodeState {
	if v == h.crashNode && round >= h.crashAt {
		return NodeStopped
	}
	return NodeUp
}

func (h *stubHook) Deliver(round, from, to int, m *Message) (*Message, bool) {
	if from == h.dropFrom {
		return nil, false
	}
	return m, false
}

func TestHookDropsAndCrashes(t *testing.T) {
	const n = 12
	g := gen.Path(n)
	// Drop everything node 0 sends: its ID never propagates, so the flood
	// converges to the max over nodes 1..n-1 for every other node.
	res, err := Run(g, func() Process { return &floodMax{rounds: n} },
		WithFaults(&stubHook{dropFrom: 0, crashNode: -1}))
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultLost == 0 {
		t.Error("expected dropped messages to be counted")
	}
	want := g.MaxID()
	for v := 1; v < n; v++ {
		if got := res.Outputs[v].(uint64); got != want {
			t.Errorf("node %d best = %d, want %d", v, got, want)
		}
	}

	// Crash-stop the middle node at round 1: it freezes on its initial
	// state and partitions the path, so IDs cannot cross it.
	mid := n / 2
	res, err = Run(g, func() Process { return &floodMax{rounds: n} },
		WithFaults(&stubHook{dropFrom: -1, crashNode: mid, crashAt: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs[mid].(uint64); got != uint64(mid+1) {
		t.Errorf("crashed node output = %d, want its own ID %d", got, mid+1)
	}
	if got := res.Outputs[0].(uint64); got == want {
		t.Error("node 0 learned an ID from across the crashed node")
	}
}
