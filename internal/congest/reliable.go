package congest

// Reliability is a transport layer slotted between the simulator and the
// protocol processes (see internal/reliable for the implementation). The
// simulator wraps every process with Wrap before Init; the wrapper owns the
// physical rounds and feeds the inner process reconstructed logical rounds.
//
// The interface lives here rather than in the transport package so that
// congest does not import its own client (mirroring how trace.Tracer is
// injected): the transport imports congest for Process and Message, and
// congest sees it only through this interface.
type Reliability interface {
	// Wrap layers the transport around one node's process. Called once per
	// node, before Init, from the run setup goroutine.
	Wrap(p Process) Process
	// HeaderBits is the exact per-frame framing overhead in bits. The
	// simulator grants it as headroom above the CONGEST bound B: physical
	// frames may carry up to B + HeaderBits() bits, while inner processes
	// are still told Bandwidth = B. Header bits are counted in all traffic
	// totals, so the overhead is measurable, not hidden.
	HeaderBits() int
	// Counters reports the transport's running totals. The simulator reads
	// it on the single delivery goroutine; implementations must make it
	// safe against concurrent node steps (atomics).
	Counters() ReliabilityCounters
}

// ReliabilityCounters are the transport's cumulative event counts.
type ReliabilityCounters struct {
	// Retransmits counts data frames sent beyond their first transmission.
	Retransmits int64
	// AckFrames counts pure control frames (no data payload): standalone
	// cumulative ACKs and keep-alive pokes.
	AckFrames int64
	// Recoveries counts crash recoveries completed by checkpoint restore.
	Recoveries int64
	// ReplayedRounds counts logical rounds re-executed from the receive log
	// during recoveries.
	ReplayedRounds int64
	// DeadPorts counts ports whose failure detector declared the far end
	// dead (crash-stop neighbours, or false positives under extreme loss).
	DeadPorts int64
}

// WithReliable installs a reliable-delivery transport. Every process is
// wrapped via r.Wrap, the physical bandwidth check is widened by
// r.HeaderBits(), and the transport's counters are published in Result and
// (per-round deltas) in trace records. Passing nil leaves the run exactly
// as it would be without the option — the zero-cost-when-off guarantee: no
// wrapping, no widened bound, no extra bookkeeping in the round loop.
func WithReliable(r Reliability) Option { return func(c *config) { c.reliable = r } }
