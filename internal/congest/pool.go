package congest

import (
	"sync"
	"sync/atomic"
)

// poolEngine fans node steps out over a fixed set of persistent workers.
// Workers are spawned once at construction and live across rounds, parked
// on per-worker start channels between rounds (the same barrier discipline
// as actorPool, amortised over workers instead of nodes); runRound releases
// them and joins on a shared done channel, so per-round overhead is
// `workers` channel operations instead of `workers` goroutine launches.
//
// Within a round, work is handed out by guided chunking: a shared atomic
// cursor from which each worker repeatedly claims the next fixed-size chunk
// of node indices. Small chunks mean a worker stuck on a run of hot
// high-degree nodes (power-law graphs cluster hubs at low indices) only
// monopolises one chunk's worth of them while the others drain the rest —
// the static contiguous split this replaces pinned the entire hub range to
// a single worker. Results stay deterministic regardless of which worker
// claims which chunk: step confines each node's state to the claiming
// goroutine for the round, and per-node randomness is pre-seeded.
type poolEngine struct {
	n       int
	chunk   int
	cursor  atomic.Int64
	start   []chan int
	done    chan struct{}
	wg      sync.WaitGroup
	step    func(v, round int)
	workers int
}

// poolChunk picks the guided chunk size: aim for several chunks per worker
// so skewed per-node costs rebalance, with a floor that keeps the atomic
// cursor off the profile for small n.
func poolChunk(n, workers int) int {
	chunk := n / (workers * 8)
	if chunk < 16 {
		chunk = 16
	}
	return chunk
}

func newPoolEngine(n, workers int, step func(v, round int)) *poolEngine {
	if workers < 1 {
		workers = 1
	}
	if workers > n && n > 0 {
		workers = n
	}
	e := &poolEngine{
		n:       n,
		chunk:   poolChunk(n, workers),
		start:   make([]chan int, workers),
		done:    make(chan struct{}, workers),
		step:    step,
		workers: workers,
	}
	for w := 0; w < workers; w++ {
		e.start[w] = make(chan int, 1)
		e.wg.Add(1)
		go func(ch chan int) {
			defer e.wg.Done()
			for round := range ch {
				for {
					lo := int(e.cursor.Add(int64(e.chunk))) - e.chunk
					if lo >= e.n {
						break
					}
					hi := lo + e.chunk
					if hi > e.n {
						hi = e.n
					}
					for v := lo; v < hi; v++ {
						e.step(v, round)
					}
				}
				e.done <- struct{}{}
			}
		}(e.start[w])
	}
	return e
}

// runRound releases every worker for one round and joins them. The joins
// form the round barrier: no worker can run ahead because its start channel
// is only written here, and the cursor is reset before any release.
func (e *poolEngine) runRound(round int) {
	e.cursor.Store(0)
	for _, ch := range e.start {
		ch <- round
	}
	for range e.start {
		<-e.done
	}
}

// shutdown terminates and joins all workers.
func (e *poolEngine) shutdown() {
	for _, ch := range e.start {
		close(ch)
	}
	e.wg.Wait()
}

// parallelFor runs fn(i) for i in [0, n) on up to workers goroutines and
// waits for completion. Work is handed out by the same guided chunking as
// poolEngine — an atomic cursor over fixed-size chunks — so a contiguous
// run of expensive indices (hub nodes of a degree-skewed graph) rebalances
// across workers instead of serialising on one. Worker counts below 1 are
// treated as 1 (Run also clamps; second line of defence for direct callers).
func parallelFor(n, workers int, fn func(int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := poolChunk(n, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
