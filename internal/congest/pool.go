package congest

import "sync"

// poolEngine partitions the node range into contiguous chunks, one per
// worker goroutine, spawned fresh each round. Chunking (rather than a
// shared work queue) keeps per-round overhead at exactly `workers`
// goroutine launches and no atomics on the hot path.
type poolEngine struct {
	n       int
	workers int
	step    func(v, round int)
}

func (e *poolEngine) runRound(round int) {
	parallelFor(e.n, e.workers, func(v int) { e.step(v, round) })
}

func (e *poolEngine) shutdown() {}

// parallelFor runs fn(i) for i in [0, n) on up to workers goroutines and
// waits for completion. Worker counts below 1 are treated as 1 (Run also
// clamps, so this is a second line of defence for direct callers).
func parallelFor(n, workers int, fn func(int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
