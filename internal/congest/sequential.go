package congest

// sequentialEngine steps nodes in index order on the calling goroutine.
// It is the reference engine: no scheduling, no synchronization, and the
// baseline the parallel engines are checked against for bit-identity.
type sequentialEngine struct {
	n    int
	step func(v, round int)
	errs []error
}

func (e *sequentialEngine) runRound(round int) {
	for v := 0; v < e.n; v++ {
		e.step(v, round)
		if e.errs[v] != nil {
			// No point stepping the remaining nodes: the round is already
			// doomed, and stopping here makes the reported error trivially
			// the lowest-index one.
			break
		}
	}
}

func (e *sequentialEngine) shutdown() {}
