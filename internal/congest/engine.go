package congest

// engineRunner is the seam between the shared round loop in simulator.run
// and the three execution engines. The loop owns everything cross-cutting —
// delivery, bandwidth enforcement, fault hooks, tracing, reliable-transport
// accounting — and per round asks the runner to invoke step(v, round) once
// for every node v in [0, n). Engines differ only in *how* they schedule
// those calls; they must never touch simulator state directly, which is
// what keeps the three executions bit-identical.
//
// Contract for runRound:
//   - step(v, round) is called at most once per node per round;
//   - node state is only ever touched from one goroutine at a time
//     (state confinement within a round);
//   - errors are reported by step writing errs[v]; the shared loop scans
//     errs in index order afterwards, so every engine yields the
//     lowest-index failing node deterministically. An engine may skip
//     remaining nodes once an error is recorded, but does not have to.
type engineRunner interface {
	// runRound executes one compute phase: step(v, round) for all nodes.
	// It must not return before every started step call has completed.
	runRound(round int)
	// shutdown releases any long-lived resources (goroutines, channels).
	// The runner is unusable afterwards. Must be idempotent-safe to call
	// exactly once; the shared loop defers it.
	shutdown()
}

// newEngineRunner builds the runner for a resolved engine choice. The
// EngineAuto policy lives in simulator.run, not here: by the time this is
// called the engine is one of the three concrete values (anything else
// falls back to the pool, mirroring the historical default branch).
func newEngineRunner(engine Engine, n, workers int, step func(v, round int), errs []error) engineRunner {
	switch engine {
	case EngineSequential:
		return &sequentialEngine{n: n, step: step, errs: errs}
	case EngineActors:
		return newActorPool(n, step)
	default:
		return newPoolEngine(n, workers, step)
	}
}
