package congest

import "sync"

// actorPool runs one long-lived goroutine per node, released round by
// round through per-node channels and joined through a shared completion
// channel. It realizes the "one goroutine = one network node" execution
// model; results are identical to the other engines because node state
// never leaves its goroutine within a round.
type actorPool struct {
	start []chan int
	done  chan struct{}
	wg    sync.WaitGroup
}

func newActorPool(n int, step func(v, round int)) *actorPool {
	p := &actorPool{
		start: make([]chan int, n),
		done:  make(chan struct{}, 1),
	}
	for v := 0; v < n; v++ {
		p.start[v] = make(chan int, 1)
		p.wg.Add(1)
		go func(v int) {
			defer p.wg.Done()
			for round := range p.start[v] {
				step(v, round)
				p.done <- struct{}{}
			}
		}(v)
	}
	return p
}

// runRound releases every actor for one round and waits for all of them.
// The n receives on done form the round barrier: no actor can run ahead
// into round r+1 because its start channel is only written here.
func (p *actorPool) runRound(round int) {
	for _, ch := range p.start {
		ch <- round
	}
	for range p.start {
		<-p.done
	}
}

// shutdown terminates and joins all actors.
func (p *actorPool) shutdown() {
	for _, ch := range p.start {
		close(ch)
	}
	p.wg.Wait()
}
