package congest

import (
	"testing"

	"distmwis/internal/wire"
)

// BenchmarkMessageDelivery measures the read-modify-rebuild cycle that the
// fault layer performs on every intercepted message. The defensive path
// (Data + NewRawMessage) copies the payload twice per message; the
// zero-copy path (AppendData into a fresh buffer + NewMessageOwned) copies
// once, and AppendData into a reused scratch buffer eliminates the
// steady-state allocation entirely. Run with -benchmem to see the
// allocs/op difference.
func BenchmarkMessageDelivery(b *testing.B) {
	var w wire.Writer
	for i := 0; i < 16; i++ {
		w.WriteUint(uint64(i*2654435761)&0xffffffff, 1<<32)
	}
	m := NewMessage(&w)
	nbits := m.Bits()

	b.Run("defensive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data := m.Data()
			data[0] ^= 1
			sinkMsg = NewRawMessage(data, nbits)
		}
	})
	b.Run("zerocopy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data := m.AppendData(nil)
			data[0] ^= 1
			sinkMsg = NewMessageOwned(data, nbits)
		}
	})
	b.Run("zerocopy-reuse", func(b *testing.B) {
		b.ReportAllocs()
		var scratch []byte
		for i := 0; i < b.N; i++ {
			scratch = m.AppendData(scratch[:0])
			scratch[0] ^= 1
			sinkBits = len(scratch)
		}
	})
}

var (
	sinkMsg  *Message
	sinkBits int
)
