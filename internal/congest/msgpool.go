package congest

import (
	"sync"

	"distmwis/internal/wire"
)

// Message pooling.
//
// On large graphs the round loop's allocation profile is dominated by one
// object class: the per-round, per-edge Message (header + payload buffer),
// built by a process, delivered into an inbox, read once the next round and
// then garbage. The pool below recycles those objects with returns batched
// at the one point in the round structure where ownership is provably
// unambiguous: the delivery phase's "clear last round's inboxes" pass.
//
// Lifecycle of a pooled message (round numbers relative to the send):
//
//	round r   compute    process calls NewPooledMessage, returns it in send
//	round r   delivery   simulator places it into receiver inbox slots
//	round r+1 compute    receiver(s) parse it via Reader/AppendData
//	round r+2 delivery   the clear pass releases it back to the pool
//
// The release point runs strictly after the last possible read (compute
// precedes delivery within a round) and on the single delivery goroutine,
// so no synchronisation beyond sync.Pool's own is needed.
//
// Two per-message flags keep the batched return sound:
//
//   - free guards against double-release when the same *Message occupies
//     several inbox slots (broadcast fan-out delivers one object to every
//     port); the clear pass releases the first occurrence and skips the rest.
//   - pooled marks objects eligible for recycling at all. The fault layer
//     clears it in deliverFaulty: a delivery hook may retain the message
//     (duplicates re-arrive a round later, and arbitrary hooks may log it),
//     which would leave stale pointers behind after a release. Unpooled
//     messages simply fall to the garbage collector, so the fault path is
//     correct at the cost of recycling — acceptable, because fault runs
//     measure behaviour, not throughput.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// NewPooledMessage freezes the contents of w into a recycled Message. The
// writer can be reused afterwards. Semantically identical to NewMessage;
// the only contract change is ownership: the returned message must be
// handed to the simulator (returned from Process.Round) and not retained
// by the sender, because the simulator returns it to the pool one round
// after delivery. Protocol code that stores messages across rounds must
// keep using NewMessage.
func NewPooledMessage(w *wire.Writer) *Message {
	m := msgPool.Get().(*Message)
	m.pooled = true
	m.free = false
	b := w.Bytes()
	if cap(m.data) < len(b) {
		m.data = make([]byte, len(b))
	} else {
		m.data = m.data[:len(b)]
	}
	copy(m.data, b)
	m.bitN = w.Len()
	return m
}

// recycleSlab nils every slot of one inbox slab and returns its pooled
// messages to the allocator. The scan marks (free flag) before any Put:
// because nothing enters the pool until the whole slab has been walked, a
// concurrent run's Get can never hand a marked object back out while later
// fan-out slots of this slab still point at it — the mark/Put split is what
// makes the batched return safe under concurrent simulations sharing the
// package-level pool. Runs on the single delivery goroutine.
func (s *simulator) recycleSlab(slab []*Message) {
	fl := s.freeList[:0]
	for i, m := range slab {
		if m == nil {
			continue
		}
		if m.pooled && !m.free {
			m.free = true
			fl = append(fl, m)
		}
		slab[i] = nil
	}
	for _, m := range fl {
		msgPool.Put(m)
	}
	s.freeList = fl[:0]
}

// recycleAll returns the in-flight messages of both slabs once a run ends.
// Outputs have been collected and no process will run again, so the final
// rounds' messages — which the per-round clear pass never reached — are
// reclaimable. Without this, protocols built from many short phases (the
// boosting pipeline runs 2–3 round phases back to back) would leak a large
// fraction of their messages to the garbage collector and refill the pool
// from cold on every phase. A message only ever occupies slots of a single
// slab (one delivery round), so the two passes never double-release.
func (s *simulator) recycleAll() {
	if s.inboxPooled {
		s.recycleSlab(s.inboxSlab)
		s.inboxPooled = false
	}
	if s.nextPooled {
		s.recycleSlab(s.nextSlab)
		s.nextPooled = false
	}
}
