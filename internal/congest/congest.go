// Package congest simulates the synchronous CONGEST and LOCAL models of
// distributed computing (Peleg 2000; Linial 1992), the models all results in
// the paper are stated in.
//
// A protocol is a per-node Process. In every synchronous round each live
// node receives at most one message per incident edge (port-numbered), runs
// its local computation, and emits at most one message per port. In the
// CONGEST model every message is limited to B = c·⌈log₂ n⌉ bits — enforced
// here against the bit-exact sizes produced by package wire. The LOCAL model
// lifts the bandwidth bound.
//
// Faithfulness to the paper's assumptions (its Section 3):
//   - nodes know only their own identifier, weight, degree, and a polynomial
//     upper bound on n (NUpper); they do not know n or Δ;
//   - randomness is private per node (independent deterministic PCG streams);
//   - ports are anonymous: a node cannot see its neighbours' identifiers
//     until they are sent in messages.
//
// Three engines produce identical executions behind one shared round loop
// (see engine.go): a sequential engine that steps nodes in index order on
// one goroutine, a worker-pool engine that fans node steps out over a
// bounded pool each round, and an actor engine that dedicates one
// long-lived goroutine to every node. The actor engine's rounds are full
// barriers realised with channels: each actor blocks until the delivery
// goroutine releases it with the round number, and the delivery goroutine
// blocks until every actor has reported back, so no node can observe
// another node's mid-round state. Because per-node state is confined to
// its goroutine within a round and per-node randomness is pre-seeded, all
// three engines are bit-identical; the cross-cutting seams — delivery,
// bandwidth enforcement, fault hooks, tracing, reliable transport — live
// once in the shared loop, never per engine.
package congest

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"time"

	"distmwis/internal/graph"
	"distmwis/internal/trace"
	"distmwis/internal/wire"
)

// Model selects the communication model.
type Model int

const (
	// ModelCongest bounds every message to Bandwidth bits per round per edge.
	ModelCongest Model = iota + 1
	// ModelLocal allows unbounded messages.
	ModelLocal
)

// ErrRoundLimit is returned when a protocol fails to terminate within the
// configured maximum number of rounds (and truncation was not requested).
var ErrRoundLimit = errors.New("congest: protocol exceeded round limit")

// Message is an immutable bit-accounted payload travelling over one edge in
// one round.
type Message struct {
	data []byte
	bitN int
	// pooled marks the message as recyclable via the round-boundary batch
	// return (see msgpool.go); free guards against double-release when one
	// broadcast object occupies several inbox slots.
	pooled bool
	free   bool
}

// NewMessage freezes the contents of w into a Message. The writer can be
// reused afterwards.
func NewMessage(w *wire.Writer) *Message {
	data := make([]byte, len(w.Bytes()))
	copy(data, w.Bytes())
	return &Message{data: data, bitN: w.Len()}
}

// NewRawMessage builds a message directly from a packed byte buffer
// holding nbits valid bits. It copies the buffer. It exists so the fault
// layer can construct corrupted variants of in-flight messages; protocol
// code should use NewMessage, and callers that hand over ownership of a
// fresh buffer should use NewMessageOwned.
func NewRawMessage(data []byte, nbits int) *Message {
	if nbits < 0 || nbits > 8*len(data) {
		panic(fmt.Sprintf("congest: NewRawMessage: %d bits do not fit in %d bytes", nbits, len(data)))
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	return &Message{data: buf, bitN: nbits}
}

// NewMessageOwned wraps data without copying. The caller transfers
// ownership: it must not read or mutate data afterwards. Together with
// AppendData it forms the zero-copy path for in-repo layers (fault
// injection, transports) that already build a private buffer per message;
// external protocol code should keep using NewMessage.
func NewMessageOwned(data []byte, nbits int) *Message {
	if nbits < 0 || nbits > 8*len(data) {
		panic(fmt.Sprintf("congest: NewMessageOwned: %d bits do not fit in %d bytes", nbits, len(data)))
	}
	return &Message{data: data, bitN: nbits}
}

// Bits returns the exact payload size in bits.
func (m *Message) Bits() int { return m.bitN }

// Data returns a copy of the packed payload bytes (Bits() of them valid).
// The copy is defensive: a Message is immutable and may still be in
// flight. Callers that need the bytes in a buffer they already own should
// use AppendData instead.
func (m *Message) Data() []byte {
	buf := make([]byte, len(m.data))
	copy(buf, m.data)
	return buf
}

// AppendData appends the packed payload bytes to dst and returns the
// extended slice. It is the zero-allocation read path: with sufficient
// capacity in dst no new buffer is created, and unlike Data it never
// allocates an intermediate copy.
func (m *Message) AppendData(dst []byte) []byte { return append(dst, m.data...) }

// Reader returns a fresh reader over the payload.
func (m *Message) Reader() *wire.Reader { return wire.NewReader(m.data, m.bitN) }

// NodeInfo is everything a node knows before round 1.
type NodeInfo struct {
	// Index is the simulator's internal node index. It exists so processes
	// can return outputs; protocol logic must not treat it as knowledge
	// (use ID, which is the paper's O(log n)-bit identifier).
	Index int
	// ID is the node's unique identifier.
	ID uint64
	// Degree is the number of incident edges (ports 0..Degree-1).
	Degree int
	// Weight is the node's weight w(v).
	Weight int64
	// NUpper is a polynomial upper bound on the network size, the only
	// global knowledge the paper grants (Section 3, "Assumptions").
	NUpper int
	// MaxID is an upper bound on identifier values, implied by NUpper
	// (identifiers are O(log n) bits). Used to size wire fields.
	MaxID uint64
	// MaxWeight is an upper bound on node weights (W ≤ poly(n)), used to
	// size wire fields for weight exchange.
	MaxWeight int64
	// Bandwidth is B, the per-message bit budget (0 means unbounded/LOCAL).
	Bandwidth int
	// Faulty reports that a fault-injection hook is installed for this run
	// (WithFaults). Protocols may switch to defensive message formats that
	// would be wasted bandwidth in a reliable network; with Faulty false
	// their executions must be bit-for-bit what they were without the hook.
	Faulty bool
	// Rand is the node's private randomness stream.
	Rand *rand.Rand
}

// Process is one node's state machine.
type Process interface {
	// Init is called once before the first round.
	Init(info NodeInfo)
	// Round runs one synchronous round. recv[p] is the message received on
	// port p this round (nil if none). The returned slice assigns outgoing
	// messages to ports: send[p] goes to port p (nil sends nothing; a short
	// or nil slice sends nothing on the remaining ports). Returning done
	// halts the node after its outgoing messages are delivered.
	Round(round int, recv []*Message) (send []*Message, done bool)
	// Output returns the node's final (or current, if truncated) output.
	Output() any
}

// Result summarises a protocol execution.
type Result struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Outputs holds each node's Output(), indexed by node.
	Outputs []any
	// Messages counts all messages delivered.
	Messages int64
	// Bits counts the total payload bits of all messages.
	Bits int64
	// MaxMessageBits is the largest single message observed.
	MaxMessageBits int
	// Truncated reports that the run was stopped by WithHardStop or the
	// round limit before all nodes halted.
	Truncated bool
	// Bandwidth echoes the enforced per-message bit budget (0 = unbounded).
	Bandwidth int
	// FaultLost counts messages dropped by the fault layer: adversarial
	// loss, plus messages addressed to a node that was down on arrival.
	FaultLost int64
	// FaultCorrupted counts messages discarded at the receiver because the
	// payload checksum no longer matched after adversarial corruption.
	FaultCorrupted int64
	// FaultDuplicated counts duplicate copies placed into inboxes by the
	// fault layer (a fresh message on the same port overwrites the copy).
	FaultDuplicated int64
	// Retransmits counts data frames re-sent by the reliable transport
	// (WithReliable); zero without one.
	Retransmits int64
	// TransportAcks counts the transport's pure control frames (standalone
	// ACKs and keep-alive pokes). These frames are also included in
	// Messages and Bits.
	TransportAcks int64
	// Recoveries counts checkpoint-restore crash recoveries performed by
	// the transport.
	Recoveries int64
	// ReplayedRounds counts logical rounds re-executed from receive logs
	// during those recoveries.
	ReplayedRounds int64
	// DeadPorts counts transport ports whose failure detector gave up on
	// the far end.
	DeadPorts int64
}

// Engine selects how node steps are executed. All engines produce
// identical results (per-node randomness is pre-seeded and state is
// confined), differing only in scheduling.
type Engine int

const (
	// EngineAuto picks Pool for large graphs and Sequential for small ones.
	EngineAuto Engine = iota
	// EngineSequential runs node steps in index order on one goroutine.
	EngineSequential
	// EnginePool fans node steps out over a worker pool each round.
	EnginePool
	// EngineActors runs one long-lived goroutine per node — the literal
	// "goroutine as network node" mapping — with channel barriers between
	// rounds.
	EngineActors
)

type config struct {
	model           Model
	bandwidthFactor int
	seed            uint64
	maxRounds       int
	hardStop        int
	nUpper          int
	workers         int
	maxWeight       int64
	engine          Engine
	hook            DeliveryHook
	tracer          trace.Tracer
	traceLabel      string
	reliable        Reliability
}

// Option configures Run.
type Option func(*config)

// WithModel selects CONGEST (default) or LOCAL.
func WithModel(m Model) Option { return func(c *config) { c.model = m } }

// WithBandwidthFactor sets c in B = c·⌈log₂ NUpper⌉ bits (default 8).
func WithBandwidthFactor(factor int) Option {
	return func(c *config) { c.bandwidthFactor = factor }
}

// WithSeed sets the root seed from which per-node streams derive
// (default 1).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithMaxRounds overrides the safety round limit (default 1<<20).
func WithMaxRounds(r int) Option { return func(c *config) { c.maxRounds = r } }

// WithHardStop truncates the execution after exactly r rounds, collecting
// whatever outputs nodes currently have. Used by the Section 7 lower-bound
// experiments, which study algorithms cut off before completion.
func WithHardStop(r int) Option { return func(c *config) { c.hardStop = r } }

// WithNUpper sets the polynomial upper bound on n that nodes are told
// (default: the true n, the most charitable choice). It must be >= n.
func WithNUpper(n int) Option { return func(c *config) { c.nUpper = n } }

// WithWorkers sets the worker count of the pool engine (default:
// GOMAXPROCS; values below 1 are clamped to 1). Under EngineAuto a worker
// count of 1 selects the sequential engine; with an explicit
// WithEngine(EnginePool) the pool runs with however many workers are set.
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// WithMaxWeight sets the upper bound W ≥ max|w(v)| on node weights that
// nodes are told (NodeInfo.MaxWeight), used to size wire fields for weight
// exchange. Without this option Run scans the graph and hands every node
// the exact global maximum — knowledge the paper's Section 3 assumptions
// do not grant, and a confound in experiments that sweep W (wire fields
// would be sized by the realized maximum instead of the nominal bound).
// Run rejects a bound below the true maximum absolute weight.
func WithMaxWeight(w int64) Option { return func(c *config) { c.maxWeight = w } }

// WithEngine selects the execution engine explicitly (default EngineAuto).
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// Bandwidth computes B for a given upper bound on n and factor.
func Bandwidth(nUpper, factor int) int {
	if nUpper < 2 {
		nUpper = 2
	}
	return factor * bits.Len(uint(nUpper-1))
}

// Run executes one protocol instance per node of g until every node halts.
func Run(g *graph.Graph, newProcess func() Process, opts ...Option) (*Result, error) {
	cfg := config{
		model:           ModelCongest,
		bandwidthFactor: 8,
		seed:            1,
		maxRounds:       1 << 20,
		workers:         runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	n := g.N()
	if cfg.nUpper == 0 {
		cfg.nUpper = n
	}
	if cfg.nUpper < n {
		return nil, fmt.Errorf("congest: NUpper %d below n %d", cfg.nUpper, n)
	}
	if cfg.workers < 1 {
		// parallelFor would divide by zero on an explicit EnginePool with
		// zero or negative workers; a floor of 1 keeps every engine valid.
		cfg.workers = 1
	}
	bandwidth := 0
	if cfg.model == ModelCongest {
		bandwidth = Bandwidth(cfg.nUpper, cfg.bandwidthFactor)
	}
	var trueMaxWeight int64
	for v := 0; v < n; v++ {
		w := g.Weight(v)
		if w < 0 {
			w = -w
		}
		if w > trueMaxWeight {
			trueMaxWeight = w
		}
	}
	if trueMaxWeight == 0 {
		trueMaxWeight = 1
	}
	maxWeight := cfg.maxWeight
	if maxWeight == 0 {
		maxWeight = trueMaxWeight
	} else if maxWeight < trueMaxWeight {
		return nil, fmt.Errorf("congest: MaxWeight %d below actual maximum |weight| %d", cfg.maxWeight, trueMaxWeight)
	}
	maxID := g.MaxID()
	if maxID == 0 {
		maxID = 1
	}

	sim := &simulator{g: g, cfg: cfg, bandwidth: bandwidth, physBandwidth: bandwidth}
	if cfg.reliable != nil && bandwidth > 0 {
		// Transport framing (seq/ack headers) rides above the CONGEST bound:
		// inner processes still budget against B, physical frames may carry
		// the exact header on top. See Reliability.HeaderBits.
		sim.physBandwidth = bandwidth + cfg.reliable.HeaderBits()
	}
	sim.procs = make([]Process, n)
	sim.done = graph.NewBitset(n)
	// Inboxes are per-node views into two flat slabs (one per round parity).
	// Two allocations instead of 2n keeps 10M-node setup out of the
	// allocator, and the delivery phase can clear or recycle a whole round's
	// messages with a single linear pass over the slab.
	ports := 2 * g.M()
	sim.inboxSlab = make([]*Message, ports)
	sim.nextSlab = make([]*Message, ports)
	sim.inbox = make([][]*Message, n)
	sim.nextInbox = make([][]*Message, n)
	sim.reversePort = buildReversePorts(g)
	// Per-node randomness lives in two slabs as well: rand.New and
	// rand.NewPCG both inline, so filling value slots allocates nothing
	// beyond the two backing arrays.
	pcgs := make([]rand.PCG, n)
	rnds := make([]rand.Rand, n)
	off := 0
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		sim.inbox[v] = sim.inboxSlab[off : off+deg : off+deg]
		sim.nextInbox[v] = sim.nextSlab[off : off+deg : off+deg]
		off += deg
		proc := newProcess()
		if cfg.reliable != nil {
			proc = cfg.reliable.Wrap(proc)
		}
		sim.procs[v] = proc
		pcgs[v] = *rand.NewPCG(cfg.seed, 0x6a09e667f3bcc908^uint64(v))
		rnds[v] = *rand.New(&pcgs[v])
		sim.procs[v].Init(NodeInfo{
			Index:     v,
			ID:        g.ID(v),
			Degree:    deg,
			Weight:    g.Weight(v),
			NUpper:    cfg.nUpper,
			MaxID:     maxID,
			MaxWeight: maxWeight,
			Bandwidth: bandwidth,
			Faulty:    cfg.hook != nil,
			Rand:      &rnds[v],
		})
	}
	return sim.run()
}

// simulator holds one execution's state.
type simulator struct {
	g         *graph.Graph
	cfg       config
	bandwidth int
	// physBandwidth is the enforced per-frame limit: bandwidth plus the
	// reliable transport's header headroom (equal to bandwidth without one).
	physBandwidth int
	procs         []Process
	done          graph.Bitset
	// inbox/nextInbox are per-node windows into inboxSlab/nextSlab; the
	// pairs swap together at the end of every delivery phase.
	inbox     [][]*Message
	nextInbox [][]*Message
	inboxSlab []*Message
	nextSlab  []*Message
	// nextPooled records whether any message delivered into nextSlab this
	// round is pool-recyclable; inboxPooled is the same fact for inboxSlab.
	// They let the clear pass fall back to a plain memclr when no pooled
	// messages are in flight.
	nextPooled  bool
	inboxPooled bool
	reversePort [][]int32
	pendingDups []pendingDup
	// freeList is recycleSlab's scratch: pooled messages marked this pass,
	// put back into the pool only after the whole slab has been walked.
	freeList []*Message
	res      Result
}

// pendingDup is a duplicate copy scheduled by the fault hook: the original
// payload, re-arriving at the receiver one round after the first delivery.
type pendingDup struct {
	to   int
	port int
	m    *Message
}

// buildReversePorts computes, for every directed edge (v, p), the port q at
// the far end u such that u's q-th neighbour is v. Because neighbour lists
// are sorted ascending, scanning v in ascending order means each u sees its
// neighbours arrive in exactly port order, so a per-node cursor assigns the
// reverse ports in one O(n + m) pass — no per-edge binary search. The table
// itself is per-node windows over a single flat slab (two allocations).
func buildReversePorts(g *graph.Graph) [][]int32 {
	n := g.N()
	rev := make([][]int32, n)
	slab := make([]int32, 2*g.M())
	off := 0
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		rev[v] = slab[off : off+deg : off+deg]
		off += deg
	}
	cur := make([]int32, n)
	for v := 0; v < n; v++ {
		for p, u := range g.Neighbors(v) {
			rev[v][p] = cur[u]
			cur[u]++
		}
	}
	return rev
}

func (s *simulator) run() (*Result, error) {
	n := s.g.N()
	live := n
	s.res.Bandwidth = s.bandwidth
	// Transport counters are cumulative per Reliability instance; snapshot a
	// base so Result reports this run's deltas even if the instance is shared.
	var relBase ReliabilityCounters
	if s.cfg.reliable != nil {
		relBase = s.cfg.reliable.Counters()
	}
	finishReliable := func() {
		if s.cfg.reliable == nil {
			return
		}
		c := s.cfg.reliable.Counters()
		s.res.Retransmits = c.Retransmits - relBase.Retransmits
		s.res.TransportAcks = c.AckFrames - relBase.AckFrames
		s.res.Recoveries = c.Recoveries - relBase.Recoveries
		s.res.ReplayedRounds = c.ReplayedRounds - relBase.ReplayedRounds
		s.res.DeadPorts = c.DeadPorts - relBase.DeadPorts
	}
	outboxes := make([][]*Message, n)
	doneNow := make([]bool, n)
	errs := make([]error, n)

	step := func(v, round int) {
		if s.done.Get(v) {
			return
		}
		if s.cfg.hook != nil && s.cfg.hook.State(round, v) != NodeUp {
			return
		}
		send, fin := s.procs[v].Round(round, s.inbox[v])
		if len(send) > s.g.Degree(v) {
			errs[v] = fmt.Errorf("congest: node %d sent on %d ports but has degree %d", v, len(send), s.g.Degree(v))
			return
		}
		if s.physBandwidth > 0 {
			for p, m := range send {
				if m != nil && m.bitN > s.physBandwidth {
					errs[v] = fmt.Errorf("congest: node %d port %d message of %d bits exceeds bandwidth %d", v, p, m.bitN, s.physBandwidth)
					return
				}
			}
		}
		outboxes[v] = send
		doneNow[v] = fin
	}

	engine := s.cfg.engine
	if engine == EngineAuto {
		if s.cfg.workers <= 1 || n < 64 {
			engine = EngineSequential
		} else {
			engine = EnginePool
		}
	}
	runner := newEngineRunner(engine, n, s.cfg.workers, step, errs)
	defer runner.shutdown()

	if s.cfg.hook != nil {
		s.cfg.hook.Begin(n)
	}

	// Tracing state. All tracer work is guarded by tr != nil: with no
	// tracer installed the loop below does not read the clock or touch any
	// of these variables, keeping the untraced hot path unchanged.
	tr := s.cfg.tracer
	var (
		labeler  PhaseLabeler
		runIdx   int
		prev     traceCounters
		phaseT0  time.Time
		computeN int64
	)
	if tr != nil {
		if n > 0 {
			labeler, _ = s.procs[0].(PhaseLabeler)
		}
		runIdx = tr.BeginRun(trace.RunInfo{
			Label:     s.cfg.traceLabel,
			N:         n,
			Bandwidth: s.bandwidth,
			Engine:    engineName(engine),
			Seed:      s.cfg.seed,
		})
		defer func() {
			tr.EndRun(trace.Summary{
				Run:       runIdx,
				Label:     s.cfg.traceLabel,
				Rounds:    s.res.Rounds,
				Messages:  s.res.Messages,
				Bits:      s.res.Bits,
				Truncated: s.res.Truncated,
			})
		}()
	}

	for round := 1; live > 0; round++ {
		if s.cfg.hardStop > 0 && round > s.cfg.hardStop {
			s.res.Truncated = true
			break
		}
		if round > s.cfg.maxRounds {
			s.res.Truncated = true
			finishReliable()
			s.collectOutputs()
			s.recycleAll()
			partial := s.res
			return nil, &TruncationError{Limit: s.cfg.maxRounds, Partial: &partial}
		}
		s.res.Rounds = round
		if tr != nil {
			prev = s.snapshotCounters(live)
			phaseT0 = time.Now()
		}

		runner.runRound(round)
		// Every engine reports the error of the lowest-index failing node,
		// so error selection is deterministic and engine-independent even
		// when parallel workers record several errors in the same round.
		for v := 0; v < n; v++ {
			if errs[v] != nil {
				return nil, errs[v]
			}
		}

		// Crash-stop nodes halt permanently; their Output() keeps the state
		// at crash time. Handled here, on the single delivery goroutine, so
		// the live count never races with the engine workers.
		if s.cfg.hook != nil {
			for v := 0; v < n; v++ {
				if !s.done.Get(v) && s.cfg.hook.State(round, v) == NodeStopped {
					s.done.Set(v)
					live--
				}
			}
		}

		if tr != nil {
			computeN = time.Since(phaseT0).Nanoseconds()
			phaseT0 = time.Now()
		}

		// Delivery phase: clear next inboxes, move messages. nextSlab holds
		// the messages consumed during the *previous* round's compute phase
		// (the slabs swapped after they were delivered), so this pass is the
		// batched pool-return point: every surviving read happened at least
		// one full compute phase ago. The free flag dedups broadcast fan-out
		// (one object in many slots); when no pooled messages were delivered
		// into this slab the whole pass degenerates to one memclr.
		if s.nextPooled {
			s.recycleSlab(s.nextSlab)
			s.nextPooled = false
		} else {
			clear(s.nextSlab)
		}
		// Duplicates scheduled during the previous round's delivery arrive
		// first, so a fresh message on the same port overwrites the copy.
		if len(s.pendingDups) > 0 {
			for _, d := range s.pendingDups {
				if s.cfg.hook.State(round+1, d.to) != NodeUp {
					continue
				}
				s.nextInbox[d.to][d.port] = d.m
				s.res.FaultDuplicated++
			}
			s.pendingDups = s.pendingDups[:0]
		}
		roundMaxBits := 0
		for v := 0; v < n; v++ {
			if s.done.Get(v) {
				continue
			}
			nbrs := s.g.Neighbors(v)
			rports := s.reversePort[v]
			for p, m := range outboxes[v] {
				if m == nil {
					continue
				}
				u := int(nbrs[p])
				rport := int(rports[p])
				s.res.Messages++
				s.res.Bits += int64(m.bitN)
				if m.bitN > roundMaxBits {
					roundMaxBits = m.bitN
				}
				if s.cfg.hook != nil {
					if m = s.deliverFaulty(round, v, u, rport, m); m == nil {
						continue
					}
				}
				s.nextPooled = s.nextPooled || m.pooled
				s.nextInbox[u][rport] = m
			}
			outboxes[v] = nil
			if doneNow[v] {
				s.done.Set(v)
				doneNow[v] = false
				live--
			}
		}
		if roundMaxBits > s.res.MaxMessageBits {
			s.res.MaxMessageBits = roundMaxBits
		}
		s.inbox, s.nextInbox = s.nextInbox, s.inbox
		s.inboxSlab, s.nextSlab = s.nextSlab, s.inboxSlab
		s.inboxPooled, s.nextPooled = s.nextPooled, s.inboxPooled

		if tr != nil {
			var retransmitsNow int64
			if s.cfg.reliable != nil {
				retransmitsNow = s.cfg.reliable.Counters().Retransmits
			}
			rec := trace.Round{
				Run:             runIdx,
				Round:           round,
				Label:           s.cfg.traceLabel,
				Messages:        s.res.Messages - prev.messages,
				Bits:            s.res.Bits - prev.bits,
				MaxMessageBits:  roundMaxBits,
				Halts:           prev.live - live,
				FaultLost:       s.res.FaultLost - prev.lost,
				FaultCorrupted:  s.res.FaultCorrupted - prev.corrupted,
				FaultDuplicated: s.res.FaultDuplicated - prev.duplicated,
				Retransmits:     retransmitsNow - prev.retransmits,
				ComputeNanos:    computeN,
				DeliveryNanos:   time.Since(phaseT0).Nanoseconds(),
			}
			if labeler != nil {
				rec.Phase = labeler.TracePhase(round)
			}
			tr.OnRound(rec)
		}
	}

	finishReliable()
	s.collectOutputs()
	s.recycleAll()
	out := s.res
	return &out, nil
}

// deliverFaulty routes one message through the delivery hook. It returns
// the (possibly rewritten) message to deliver this round, or nil if the
// message is lost, corrupted beyond the checksum, or addressed to a node
// that is down when it would arrive (round+1). Duplicates of the original
// payload are queued for the following round.
func (s *simulator) deliverFaulty(round, from, to, rport int, m *Message) *Message {
	// A hook may retain the message beyond this round — duplicates re-arrive
	// a round later via pendingDups, and arbitrary hooks may log payloads —
	// so messages that cross the fault seam are withdrawn from pool
	// recycling and left to the garbage collector.
	m.pooled = false
	if s.cfg.hook.State(round+1, to) != NodeUp {
		s.res.FaultLost++
		return nil
	}
	sum := wire.Checksum(m.data, m.bitN)
	out, dup := s.cfg.hook.Deliver(round, from, to, m)
	if dup {
		// A duplicate re-sends the original frame; corruption (below) is
		// per-transmission and does not propagate into the copy.
		s.pendingDups = append(s.pendingDups, pendingDup{to: to, port: rport, m: m})
	}
	if out == nil {
		s.res.FaultLost++
		return nil
	}
	if out != m {
		// The hook rewrote the payload. The bandwidth bound must be
		// preserved exactly, and the receiver verifies the link-layer
		// checksum: any mismatch makes the message indistinguishable from
		// a loss.
		if out.bitN != m.bitN || wire.Checksum(out.data, out.bitN) != sum {
			s.res.FaultCorrupted++
			return nil
		}
	}
	return out
}

func (s *simulator) collectOutputs() {
	n := s.g.N()
	s.res.Outputs = make([]any, n)
	for v := 0; v < n; v++ {
		s.res.Outputs[v] = s.procs[v].Output()
	}
}

// BoolOutputs converts a Result's outputs to a []bool membership vector;
// nodes whose output is not a bool are treated as false.
func BoolOutputs(res *Result) []bool {
	out := make([]bool, len(res.Outputs))
	for i, o := range res.Outputs {
		if b, ok := o.(bool); ok {
			out[i] = b
		}
	}
	return out
}
