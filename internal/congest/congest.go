// Package congest simulates the synchronous CONGEST and LOCAL models of
// distributed computing (Peleg 2000; Linial 1992), the models all results in
// the paper are stated in.
//
// A protocol is a per-node Process. In every synchronous round each live
// node receives at most one message per incident edge (port-numbered), runs
// its local computation, and emits at most one message per port. In the
// CONGEST model every message is limited to B = c·⌈log₂ n⌉ bits — enforced
// here against the bit-exact sizes produced by package wire. The LOCAL model
// lifts the bandwidth bound.
//
// Faithfulness to the paper's assumptions (its Section 3):
//   - nodes know only their own identifier, weight, degree, and a polynomial
//     upper bound on n (NUpper); they do not know n or Δ;
//   - randomness is private per node (independent deterministic PCG streams);
//   - ports are anonymous: a node cannot see its neighbours' identifiers
//     until they are sent in messages.
//
// Two engines produce identical executions: a sequential engine and a
// worker-pool engine that runs node steps on parallel goroutines (per-node
// state is confined to its goroutine within a round; rounds are barriers).
package congest

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"

	"distmwis/internal/graph"
	"distmwis/internal/wire"
)

// Model selects the communication model.
type Model int

const (
	// ModelCongest bounds every message to Bandwidth bits per round per edge.
	ModelCongest Model = iota + 1
	// ModelLocal allows unbounded messages.
	ModelLocal
)

// ErrRoundLimit is returned when a protocol fails to terminate within the
// configured maximum number of rounds (and truncation was not requested).
var ErrRoundLimit = errors.New("congest: protocol exceeded round limit")

// Message is an immutable bit-accounted payload travelling over one edge in
// one round.
type Message struct {
	data []byte
	bitN int
}

// NewMessage freezes the contents of w into a Message. The writer can be
// reused afterwards.
func NewMessage(w *wire.Writer) *Message {
	data := make([]byte, len(w.Bytes()))
	copy(data, w.Bytes())
	return &Message{data: data, bitN: w.Len()}
}

// Bits returns the exact payload size in bits.
func (m *Message) Bits() int { return m.bitN }

// Reader returns a fresh reader over the payload.
func (m *Message) Reader() *wire.Reader { return wire.NewReader(m.data, m.bitN) }

// NodeInfo is everything a node knows before round 1.
type NodeInfo struct {
	// Index is the simulator's internal node index. It exists so processes
	// can return outputs; protocol logic must not treat it as knowledge
	// (use ID, which is the paper's O(log n)-bit identifier).
	Index int
	// ID is the node's unique identifier.
	ID uint64
	// Degree is the number of incident edges (ports 0..Degree-1).
	Degree int
	// Weight is the node's weight w(v).
	Weight int64
	// NUpper is a polynomial upper bound on the network size, the only
	// global knowledge the paper grants (Section 3, "Assumptions").
	NUpper int
	// MaxID is an upper bound on identifier values, implied by NUpper
	// (identifiers are O(log n) bits). Used to size wire fields.
	MaxID uint64
	// MaxWeight is an upper bound on node weights (W ≤ poly(n)), used to
	// size wire fields for weight exchange.
	MaxWeight int64
	// Bandwidth is B, the per-message bit budget (0 means unbounded/LOCAL).
	Bandwidth int
	// Rand is the node's private randomness stream.
	Rand *rand.Rand
}

// Process is one node's state machine.
type Process interface {
	// Init is called once before the first round.
	Init(info NodeInfo)
	// Round runs one synchronous round. recv[p] is the message received on
	// port p this round (nil if none). The returned slice assigns outgoing
	// messages to ports: send[p] goes to port p (nil sends nothing; a short
	// or nil slice sends nothing on the remaining ports). Returning done
	// halts the node after its outgoing messages are delivered.
	Round(round int, recv []*Message) (send []*Message, done bool)
	// Output returns the node's final (or current, if truncated) output.
	Output() any
}

// Result summarises a protocol execution.
type Result struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Outputs holds each node's Output(), indexed by node.
	Outputs []any
	// Messages counts all messages delivered.
	Messages int64
	// Bits counts the total payload bits of all messages.
	Bits int64
	// MaxMessageBits is the largest single message observed.
	MaxMessageBits int
	// Truncated reports that the run was stopped by WithHardStop before all
	// nodes halted.
	Truncated bool
	// Bandwidth echoes the enforced per-message bit budget (0 = unbounded).
	Bandwidth int
}

// Engine selects how node steps are executed. All engines produce
// identical results (per-node randomness is pre-seeded and state is
// confined), differing only in scheduling.
type Engine int

const (
	// EngineAuto picks Pool for large graphs and Sequential for small ones.
	EngineAuto Engine = iota
	// EngineSequential runs node steps in index order on one goroutine.
	EngineSequential
	// EnginePool fans node steps out over a worker pool each round.
	EnginePool
	// EngineActors runs one long-lived goroutine per node — the literal
	// "goroutine as network node" mapping — with channel barriers between
	// rounds.
	EngineActors
)

type config struct {
	model           Model
	bandwidthFactor int
	seed            uint64
	maxRounds       int
	hardStop        int
	nUpper          int
	workers         int
	maxWeight       int64
	engine          Engine
}

// Option configures Run.
type Option func(*config)

// WithModel selects CONGEST (default) or LOCAL.
func WithModel(m Model) Option { return func(c *config) { c.model = m } }

// WithBandwidthFactor sets c in B = c·⌈log₂ NUpper⌉ bits (default 8).
func WithBandwidthFactor(factor int) Option {
	return func(c *config) { c.bandwidthFactor = factor }
}

// WithSeed sets the root seed from which per-node streams derive
// (default 1).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithMaxRounds overrides the safety round limit (default 1<<20).
func WithMaxRounds(r int) Option { return func(c *config) { c.maxRounds = r } }

// WithHardStop truncates the execution after exactly r rounds, collecting
// whatever outputs nodes currently have. Used by the Section 7 lower-bound
// experiments, which study algorithms cut off before completion.
func WithHardStop(r int) Option { return func(c *config) { c.hardStop = r } }

// WithNUpper sets the polynomial upper bound on n that nodes are told
// (default: the true n, the most charitable choice). It must be >= n.
func WithNUpper(n int) Option { return func(c *config) { c.nUpper = n } }

// WithWorkers sets the parallel engine's worker count; 1 selects the
// sequential engine (default: GOMAXPROCS).
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// WithEngine selects the execution engine explicitly (default EngineAuto).
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// Bandwidth computes B for a given upper bound on n and factor.
func Bandwidth(nUpper, factor int) int {
	if nUpper < 2 {
		nUpper = 2
	}
	return factor * bits.Len(uint(nUpper-1))
}

// Run executes one protocol instance per node of g until every node halts.
func Run(g *graph.Graph, newProcess func() Process, opts ...Option) (*Result, error) {
	cfg := config{
		model:           ModelCongest,
		bandwidthFactor: 8,
		seed:            1,
		maxRounds:       1 << 20,
		workers:         runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	n := g.N()
	if cfg.nUpper == 0 {
		cfg.nUpper = n
	}
	if cfg.nUpper < n {
		return nil, fmt.Errorf("congest: NUpper %d below n %d", cfg.nUpper, n)
	}
	bandwidth := 0
	if cfg.model == ModelCongest {
		bandwidth = Bandwidth(cfg.nUpper, cfg.bandwidthFactor)
	}
	maxWeight := cfg.maxWeight
	if maxWeight == 0 {
		for v := 0; v < n; v++ {
			w := g.Weight(v)
			if w < 0 {
				w = -w
			}
			if w > maxWeight {
				maxWeight = w
			}
		}
		if maxWeight == 0 {
			maxWeight = 1
		}
	}
	maxID := g.MaxID()
	if maxID == 0 {
		maxID = 1
	}

	sim := &simulator{g: g, cfg: cfg, bandwidth: bandwidth}
	sim.procs = make([]Process, n)
	sim.done = make([]bool, n)
	sim.inbox = make([][]*Message, n)
	sim.nextInbox = make([][]*Message, n)
	sim.reversePort = buildReversePorts(g)
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		sim.inbox[v] = make([]*Message, deg)
		sim.nextInbox[v] = make([]*Message, deg)
		sim.procs[v] = newProcess()
		sim.procs[v].Init(NodeInfo{
			Index:     v,
			ID:        g.ID(v),
			Degree:    deg,
			Weight:    g.Weight(v),
			NUpper:    cfg.nUpper,
			MaxID:     maxID,
			MaxWeight: maxWeight,
			Bandwidth: bandwidth,
			Rand:      rand.New(rand.NewPCG(cfg.seed, 0x6a09e667f3bcc908^uint64(v))),
		})
	}
	return sim.run()
}

// simulator holds one execution's state.
type simulator struct {
	g           *graph.Graph
	cfg         config
	bandwidth   int
	procs       []Process
	done        []bool
	inbox       [][]*Message
	nextInbox   [][]*Message
	reversePort [][]int32
	res         Result
}

func buildReversePorts(g *graph.Graph) [][]int32 {
	n := g.N()
	rev := make([][]int32, n)
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		rev[v] = make([]int32, len(nbrs))
		for p, u := range nbrs {
			// Port q at u such that u's q-th neighbour is v.
			un := g.Neighbors(int(u))
			q := sort.Search(len(un), func(i int) bool { return un[i] >= int32(v) })
			rev[v][p] = int32(q)
		}
	}
	return rev
}

func (s *simulator) run() (*Result, error) {
	n := s.g.N()
	live := n
	s.res.Bandwidth = s.bandwidth
	outboxes := make([][]*Message, n)
	doneNow := make([]bool, n)
	errs := make([]error, n)

	step := func(v, round int) {
		if s.done[v] {
			return
		}
		send, fin := s.procs[v].Round(round, s.inbox[v])
		if len(send) > s.g.Degree(v) {
			errs[v] = fmt.Errorf("congest: node %d sent on %d ports but has degree %d", v, len(send), s.g.Degree(v))
			return
		}
		if s.bandwidth > 0 {
			for p, m := range send {
				if m != nil && m.bitN > s.bandwidth {
					errs[v] = fmt.Errorf("congest: node %d port %d message of %d bits exceeds bandwidth %d", v, p, m.bitN, s.bandwidth)
					return
				}
			}
		}
		outboxes[v] = send
		doneNow[v] = fin
	}

	engine := s.cfg.engine
	if engine == EngineAuto {
		if s.cfg.workers <= 1 || n < 64 {
			engine = EngineSequential
		} else {
			engine = EnginePool
		}
	}
	var actors *actorPool
	if engine == EngineActors && n > 0 {
		actors = newActorPool(n, step)
		defer actors.shutdown()
	}

	for round := 1; live > 0; round++ {
		if s.cfg.hardStop > 0 && round > s.cfg.hardStop {
			s.res.Truncated = true
			break
		}
		if round > s.cfg.maxRounds {
			return nil, fmt.Errorf("%w: %d rounds", ErrRoundLimit, s.cfg.maxRounds)
		}
		s.res.Rounds = round

		switch engine {
		case EngineSequential:
			for v := 0; v < n; v++ {
				step(v, round)
			}
		case EngineActors:
			actors.runRound(round)
		default:
			parallelFor(n, s.cfg.workers, func(v int) { step(v, round) })
		}
		for v := 0; v < n; v++ {
			if errs[v] != nil {
				return nil, errs[v]
			}
		}

		// Delivery phase: clear next inboxes, move messages.
		for v := 0; v < n; v++ {
			next := s.nextInbox[v]
			for i := range next {
				next[i] = nil
			}
		}
		for v := 0; v < n; v++ {
			if s.done[v] {
				continue
			}
			for p, m := range outboxes[v] {
				if m == nil {
					continue
				}
				u := s.g.Neighbors(v)[p]
				s.nextInbox[u][s.reversePort[v][p]] = m
				s.res.Messages++
				s.res.Bits += int64(m.bitN)
				if m.bitN > s.res.MaxMessageBits {
					s.res.MaxMessageBits = m.bitN
				}
			}
			outboxes[v] = nil
			if doneNow[v] {
				s.done[v] = true
				doneNow[v] = false
				live--
			}
		}
		s.inbox, s.nextInbox = s.nextInbox, s.inbox
	}

	s.res.Outputs = make([]any, n)
	for v := 0; v < n; v++ {
		s.res.Outputs[v] = s.procs[v].Output()
	}
	out := s.res
	return &out, nil
}

// actorPool runs one long-lived goroutine per node, released round by
// round through per-node channels and joined through a shared completion
// channel. It realizes the "one goroutine = one network node" execution
// model; results are identical to the other engines because node state
// never leaves its goroutine within a round.
type actorPool struct {
	start []chan int
	done  chan struct{}
	wg    sync.WaitGroup
}

func newActorPool(n int, step func(v, round int)) *actorPool {
	p := &actorPool{
		start: make([]chan int, n),
		done:  make(chan struct{}, 1),
	}
	for v := 0; v < n; v++ {
		p.start[v] = make(chan int, 1)
		p.wg.Add(1)
		go func(v int) {
			defer p.wg.Done()
			for round := range p.start[v] {
				step(v, round)
				p.done <- struct{}{}
			}
		}(v)
	}
	return p
}

// runRound releases every actor for one round and waits for all of them.
func (p *actorPool) runRound(round int) {
	for _, ch := range p.start {
		ch <- round
	}
	for range p.start {
		<-p.done
	}
}

// shutdown terminates and joins all actors.
func (p *actorPool) shutdown() {
	for _, ch := range p.start {
		close(ch)
	}
	p.wg.Wait()
}

// parallelFor runs fn(i) for i in [0, n) on up to workers goroutines and
// waits for completion.
func parallelFor(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// BoolOutputs converts a Result's outputs to a []bool membership vector;
// nodes whose output is not a bool are treated as false.
func BoolOutputs(res *Result) []bool {
	out := make([]bool, len(res.Outputs))
	for i, o := range res.Outputs {
		if b, ok := o.(bool); ok {
			out[i] = b
		}
	}
	return out
}
