// Package distmwis hosts the repository-level benchmark harness: one
// testing.B benchmark per reproduction table E1–E16 (DESIGN.md §2), each
// exercising the experiment's central measurement and reporting the
// domain metrics (CONGEST rounds, set weight) alongside wall-clock time.
//
// Regenerate the full tables with:  go run ./cmd/experiments
package distmwis

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"distmwis/internal/coloring"
	"distmwis/internal/congest"
	"distmwis/internal/exact"
	"distmwis/internal/experiments"
	"distmwis/internal/fault"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/localapprox"
	"distmwis/internal/lowerbound"
	"distmwis/internal/maxis"
	"distmwis/internal/mis"
	"distmwis/internal/reliable"
	"distmwis/internal/server"
	"distmwis/internal/trace"
)

// BenchmarkE1GoodNodes measures the Theorem 8 O(Δ)-approximation.
func BenchmarkE1GoodNodes(b *testing.B) {
	g := gen.Weighted(gen.GNP(2048, 12.0/2048, 1), gen.PolyWeights(2), 1)
	bound := float64(g.TotalWeight()) / (4 * float64(g.MaxDegree()+1))
	rounds := 0
	for i := 0; i < b.N; i++ {
		res, err := maxis.GoodNodes(g, maxis.Config{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if float64(res.Weight) < bound {
			b.Fatalf("Theorem 8 guarantee violated: %d < %.1f", res.Weight, bound)
		}
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE2Sparsify measures the Section 4.2 sampling protocol.
func BenchmarkE2Sparsify(b *testing.B) {
	g := gen.Weighted(gen.Clique(512), gen.UniformWeights(1<<16), 2)
	maxDH := 0
	for i := 0; i < b.N; i++ {
		inH, err := maxis.SampleSparsifier(g, maxis.Config{Seed: uint64(i + 1)}, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		sub := g.Induce(inH)
		if d := sub.G.MaxDegree(); d > maxDH {
			maxDH = d
		}
	}
	b.ReportMetric(float64(maxDH), "maxΔH")
}

// BenchmarkE3Theorem1 measures the boosted deterministic-capable pipeline.
func BenchmarkE3Theorem1(b *testing.B) {
	g := gen.Weighted(gen.GNP(512, 0.03, 3), gen.UniformWeights(1000), 3)
	rounds := 0
	for i := 0; i < b.N; i++ {
		res, err := maxis.Theorem1(g, 0.5, maxis.Config{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE4Theorem2 measures the randomized sparsified pipeline at
// W = n².
func BenchmarkE4Theorem2(b *testing.B) {
	g := gen.Weighted(gen.GNP(1024, 24.0/1024, 4), gen.PolyWeights(2), 4)
	rounds := 0
	for i := 0; i < b.N; i++ {
		res, err := maxis.Theorem2(g, 1, maxis.Config{Seed: uint64(i + 1), MIS: mis.Ghaffari{}})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE5BaselineLogW measures the [8] baseline at large W.
func BenchmarkE5BaselineLogW(b *testing.B) {
	g := gen.Weighted(gen.GNP(512, 0.06, 5), gen.UniformWeights(1<<24), 5)
	rounds := 0
	for i := 0; i < b.N; i++ {
		res, err := maxis.BarYehuda(g, maxis.Config{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE6Boost measures one full boosting run including the stack
// property verification.
func BenchmarkE6Boost(b *testing.B) {
	g := gen.Weighted(gen.GNP(400, 0.03, 6), gen.ExponentialSpreadWeights(24), 6)
	for i := 0; i < b.N; i++ {
		res, err := maxis.Theorem1(g, 0.5, maxis.Config{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Weight < res.StackValue {
			b.Fatal("stack property violated")
		}
	}
}

// BenchmarkE7Arboricity measures Theorem 3 on a bounded-arboricity graph.
func BenchmarkE7Arboricity(b *testing.B) {
	g := gen.Weighted(gen.UnionOfForests(600, 3, 7), gen.UniformWeights(256), 7)
	rounds := 0
	for i := 0; i < b.N; i++ {
		res, err := maxis.Theorem3(g, 3, 0.5, maxis.Config{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE8Ranking measures the Theorem 11 ranking algorithm with its
// size guarantee.
func BenchmarkE8Ranking(b *testing.B) {
	g := gen.Cycle(4096)
	want := g.N() / (8 * (g.MaxDegree() + 1))
	for i := 0; i < b.N; i++ {
		res, err := maxis.Ranking(g, 2, maxis.Config{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if graph.SetSize(res.Set) < want {
			b.Fatalf("Theorem 11 size guarantee violated")
		}
	}
}

// BenchmarkE9SeqEquiv measures the sequential view of the ranking
// algorithm (Proposition 3 / Algorithm 3).
func BenchmarkE9SeqEquiv(b *testing.B) {
	g := gen.GNP(2048, 4.0/2048, 9)
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < b.N; i++ {
		set, _ := maxis.SeqBoppanna(g, rng)
		if !g.IsIndependentSet(set) {
			b.Fatal("dependent set")
		}
	}
}

// BenchmarkE10Theorem5 measures the O(1/ε) low-degree pipeline.
func BenchmarkE10Theorem5(b *testing.B) {
	g := gen.Torus(48, 48)
	rounds := 0
	for i := 0; i < b.N; i++ {
		res, err := maxis.Theorem5(g, 0.5, maxis.Config{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Metrics.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE11OneRound measures the expectation-only [17] baseline on the
// high-variance instance.
func BenchmarkE11OneRound(b *testing.B) {
	g := gen.StarOfCliques(40, 400, 1_000_000)
	for i := 0; i < b.N; i++ {
		if _, err := maxis.OneRound(g, maxis.Config{Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12LowerBound measures the Section 7 RandMIS reduction.
func BenchmarkE12LowerBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.RandMIS(128, 16, lowerbound.RankingAlgorithm(2), uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxGap > 128/2 {
			b.Fatalf("unexpectedly long gap %d", res.MaxGap)
		}
	}
}

// BenchmarkE13Headline measures the MIS-vs-approximation round comparison.
func BenchmarkE13Headline(b *testing.B) {
	g := gen.GNP(4096, 12.0/4096, 13)
	misRounds, apxRounds := 0, 0
	for i := 0; i < b.N; i++ {
		m, err := mis.Compute(mis.Luby{}, g)
		if err != nil {
			b.Fatal(err)
		}
		a, err := maxis.Theorem5(g, 0.5, maxis.Config{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		misRounds = m.Exec.Rounds
		apxRounds = a.Metrics.Rounds
	}
	b.ReportMetric(float64(misRounds), "mis-rounds")
	b.ReportMetric(float64(apxRounds), "approx-rounds")
}

// BenchmarkE14ColorClass measures the Section 8 colour-class pipeline on a
// grid (the Ω(D) barrier of Open Question 2).
func BenchmarkE14ColorClass(b *testing.B) {
	g := gen.Weighted(gen.Grid(20, 20), gen.UniformWeights(100), 14)
	rounds := 0
	for i := 0; i < b.N; i++ {
		set, r, _, err := coloring.ColorClassApprox(g, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if !g.IsIndependentSet(set) {
			b.Fatal("dependent set")
		}
		rounds = r
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE15ColeVishkin measures the deterministic O(log* n) ring MIS.
func BenchmarkE15ColeVishkin(b *testing.B) {
	g := gen.Cycle(1 << 14)
	ports := coloring.CanonicalRingSuccessorPorts(g.N())
	rounds := 0
	for i := 0; i < b.N; i++ {
		set, r, _, err := coloring.RingMIS(g, ports)
		if err != nil {
			b.Fatal(err)
		}
		if !g.IsMaximalIS(set) {
			b.Fatal("not an MIS")
		}
		rounds = r
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE16LocalApprox measures the LOCAL (1+ε)-approximation via
// low-diameter decomposition.
func BenchmarkE16LocalApprox(b *testing.B) {
	g := gen.Weighted(gen.RandomTree(2000, 16), gen.UniformWeights(1000), 16)
	rounds := 0
	for i := 0; i < b.N; i++ {
		res, err := localapprox.Approximate(g, localapprox.Options{Epsilon: 0.5, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkExactMWIS measures the exact branch-and-bound solver used to
// certify approximation ratios.
func BenchmarkExactMWIS(b *testing.B) {
	g := gen.Weighted(gen.GNP(48, 0.2, 14), gen.UniformWeights(1000), 14)
	for i := 0; i < b.N; i++ {
		if _, _, err := exact.MWIS(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableE3 regenerates the complete E3 table in quick mode — the
// end-to-end harness path used by cmd/experiments.
func BenchmarkTableE3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("E3", experiments.Options{Quick: true, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSeamRun executes Luby's MIS on g with a hard stop bounding the work,
// under the base benchmark seed plus any seam-specific options.
func benchSeamRun(b *testing.B, g *graph.Graph, extra ...congest.Option) *congest.Result {
	b.Helper()
	opts := append([]congest.Option{congest.WithSeed(11), congest.WithHardStop(9)}, extra...)
	res, err := congest.Run(g, mis.Luby{}.NewProcess, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkPowerLawSeams1M drives the pooled, batched-delivery round loop
// over a degree-skewed 1,000,000-node power-law graph (the workload the
// guided-chunking fix targets: hubs cluster at low indices) through every
// delivery seam the simulator offers — plain, fault injection, event
// tracing, and the reliable transport over a lossy link. Each sub-benchmark
// first computes a sequential-engine reference outside the timed region,
// then times the pool engine and requires its outputs bit-identical to that
// reference on every iteration, so the numbers double as a standing proof
// that message pooling and batched delivery are invisible to protocol
// semantics at scale.
func BenchmarkPowerLawSeams1M(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-node graph: skipped in -short mode")
	}
	g := gen.PowerLaw(1_000_000, 2.5, 2000, 41)
	seams := []struct {
		name string
		opts func() []congest.Option // fresh per run: seams carry run-local state
	}{
		{"plain", func() []congest.Option { return nil }},
		{"faults", func() []congest.Option {
			return []congest.Option{congest.WithFaults(fault.NewInjector(fault.Schedule{
				Seed: 5, Loss: 0.02, Dup: 0.01, Corrupt: 0.005,
			}))}
		}},
		{"trace", func() []congest.Option {
			return []congest.Option{congest.WithTracer(trace.NewRing(64))}
		}},
		{"reliable", func() []congest.Option {
			return []congest.Option{
				congest.WithFaults(fault.NewInjector(fault.Schedule{Seed: 6, Loss: 0.02})),
				congest.WithReliable(reliable.New(reliable.Options{})),
			}
		}},
	}
	for _, seam := range seams {
		b.Run(seam.name, func(b *testing.B) {
			ref := benchSeamRun(b, g, append(seam.opts(), congest.WithEngine(congest.EngineSequential))...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := benchSeamRun(b, g,
					append(seam.opts(), congest.WithEngine(congest.EnginePool), congest.WithWorkers(4))...)
				b.StopTimer()
				if !reflect.DeepEqual(ref.Outputs, res.Outputs) {
					b.Fatalf("seam %q: pool-engine outputs diverge from the sequential engine", seam.name)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(ref.Rounds), "rounds")
		})
	}
}

// BenchmarkRoundLoop10M is the ROADMAP scale target: ten million nodes
// through the full round loop — pooled messages, flat inbox slabs, batched
// delivery, persistent pool workers — on a sparse GNP graph (mean degree
// 2.5, so ~12.5M edges). The hard stop bounds the run at nine simulator
// rounds of Luby's MIS; completing at all is the acceptance criterion, the
// ns/op figure is the trend to watch. Run with -benchtime=1x unless you
// mean it.
func BenchmarkRoundLoop10M(b *testing.B) {
	if testing.Short() {
		b.Skip("10M-node graph: skipped in -short mode")
	}
	const n = 10_000_000
	g := gen.GNP(n, 2.5/n, 17)
	b.ResetTimer()
	inSet := 0
	for i := 0; i < b.N; i++ {
		res, err := congest.Run(g, mis.Luby{}.NewProcess,
			congest.WithSeed(uint64(i+1)), congest.WithHardStop(9),
			congest.WithEngine(congest.EnginePool), congest.WithWorkers(4))
		if err != nil {
			b.Fatal(err)
		}
		inSet = 0
		for _, out := range res.Outputs {
			if joined, ok := out.(bool); ok && joined {
				inSet++
			}
		}
		if inSet == 0 {
			b.Fatal("no node joined the MIS in 9 rounds on a 10M-node graph")
		}
	}
	b.ReportMetric(float64(inSet), "set-size")
	b.ReportMetric(float64(g.M()), "edges")
}

func benchSolve(b *testing.B, h http.Handler, raw []byte) server.SolveResponse {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(raw))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("solve: code=%d body=%s", w.Code, w.Body.String())
	}
	var resp server.SolveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		b.Fatal(err)
	}
	return resp
}

// BenchmarkServeColdVsCacheHit compares a cold 10k-node GNP solve through
// the full maxisd request path (decode → admit → schedule → engine) against
// a content-addressed cache hit for the identical request. The serving
// layer's design target is ≥100× on hits; compare the two sub-benchmark
// ns/op figures.
func BenchmarkServeColdVsCacheHit(b *testing.B) {
	s := server.New(server.Options{Workers: 1})
	defer func() { _ = s.Drain() }()
	h := s.Handler()
	mk := func(noCache bool) []byte {
		raw, err := json.Marshal(server.SolveRequest{
			Gen:     &server.GenSpec{Kind: "gnp", N: 10_000, P: 10.0 / 10_000, Weights: "poly2", Seed: 7},
			Alg:     "goodnodes",
			Seed:    7,
			NoCache: noCache,
		})
		if err != nil {
			b.Fatal(err)
		}
		return raw
	}

	b.Run("cold", func(b *testing.B) {
		raw := mk(true) // bypass the cache: every iteration pays the engine
		for i := 0; i < b.N; i++ {
			if resp := benchSolve(b, h, raw); resp.Cached {
				b.Fatal("cold path unexpectedly served from cache")
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		raw := mk(false)
		warm := benchSolve(b, h, raw) // populate the cache line
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp := benchSolve(b, h, raw)
			if !resp.Cached {
				b.Fatal("expected a cache hit")
			}
			if resp.Weight != warm.Weight {
				b.Fatalf("hit weight %d != cold weight %d", resp.Weight, warm.Weight)
			}
		}
	})
}

// BenchmarkServeSchedulerDepth1 measures per-request serving overhead at
// queue depth 1: a closed loop of uncacheable single-node solves, so the
// figure is dominated by scheduling, admission and JSON plumbing rather
// than engine time.
func BenchmarkServeSchedulerDepth1(b *testing.B) {
	s := server.New(server.Options{Workers: 1})
	defer func() { _ = s.Drain() }()
	h := s.Handler()
	raw, err := json.Marshal(server.SolveRequest{
		Gen:     &server.GenSpec{Kind: "path", N: 1},
		Alg:     "goodnodes",
		Seed:    1,
		NoCache: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		benchSolve(b, h, raw)
	}
}
